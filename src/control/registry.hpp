// ModelRegistry — the control plane's source of truth for deployable model
// artifacts (the retrain-and-push loop of the paper's deployment story:
// operators keep retraining while the switch keeps classifying).
//
// The registry stores immutable compiler::VersionedModel snapshots under
// (name, version). Versions are stamped monotonically per name at Publish
// time, snapshots are handed out as shared_ptr-to-const (a serving
// StreamServer, an UpdatePlanner diff and the registry itself can hold the
// same artifact concurrently — retiring a version from the registry never
// pulls it out from under a server mid-swap), and nothing is ever mutated
// in place: a "model update" is a new version, full stop.
//
// On-disk format (envelope v2): magic, format version, payload size and a
// CRC-32 seal, followed by the payload — (name, version, lowering options)
// around core/serialize.hpp's CompiledModel artifact. LoweredModels are NOT
// serialized — lowering is deterministic, so SaveModel stores the knobs and
// LoadModel re-places the tables, producing a bit-identical pipeline
// (asserted by tests/test_serialize.cpp and tests/test_control.cpp). Any
// header/seal mismatch (bad magic, implausible size, CRC failure,
// truncation) is rejected as core::CorruptArtifactError BEFORE the payload
// is parsed, so a torn or bit-flipped envelope can never hydrate a model.
//
// File publish is atomic: SaveModelToFile writes a sibling tmp file and
// renames it into place, so a crash mid-write leaves either the previous
// artifact or none — never a half-written one (readers + the CRC catch the
// rest).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "compiler/compiler.hpp"

namespace pegasus::control {

/// Envelope magic ("PEGAREG1") and format version for the registry's
/// on-disk artifact. v2 added the payload-size + CRC-32 seal header.
inline constexpr std::uint64_t kRegistryArtifactMagic = 0x5045474152454731ull;
inline constexpr std::uint32_t kRegistryArtifactVersion = 2;

/// Ceiling on a v2 envelope's recorded payload size. Honest artifacts are
/// tens of KB to tens of MB; 1 GiB of headroom keeps a corrupted size
/// field from driving a giant allocation before the CRC check can run.
inline constexpr std::uint64_t kMaxEnvelopePayloadBytes = 1ull << 30;

class ModelRegistry {
 public:
  using Snapshot = std::shared_ptr<const compiler::VersionedModel>;

  /// Stamps `artifact` with `name` and the next version for that name
  /// (starting at 1) and stores it. Returns the assigned version. Throws
  /// std::invalid_argument when the artifact has no lowered model.
  std::uint64_t Publish(const std::string& name,
                        compiler::VersionedModel artifact);

  /// nullptr when (name, version) was never published.
  Snapshot Get(const std::string& name, std::uint64_t version) const;
  /// Highest published version of `name`; nullptr for unknown names.
  Snapshot Latest(const std::string& name) const;

  std::vector<std::string> Names() const;
  /// Ascending published versions of `name` (empty for unknown names).
  std::vector<std::uint64_t> Versions(const std::string& name) const;
  std::size_t size() const;

  /// Writes the (name, version) artifact in the on-disk envelope format.
  /// Throws std::out_of_range for unknown snapshots.
  void SaveModel(std::ostream& os, const std::string& name,
                 std::uint64_t version) const;

  /// Reads an envelope written by SaveModel, verifies the CRC-32 seal,
  /// re-lowers the model with the stored options and stores it under its
  /// recorded (name, version). Returns the restored snapshot. Throws
  /// core::CorruptArtifactError (a std::runtime_error) on any bad/corrupt
  /// envelope and std::invalid_argument when that (name, version) is
  /// already published (loads are not idempotent — dedupe by Versions()
  /// before re-hydrating from disk).
  Snapshot LoadModel(std::istream& is);

  /// Atomic file publish: serializes the (name, version) envelope to
  /// `path + ".tmp"` and renames it over `path`. A crash or failure at any
  /// point leaves `path` either absent or holding the previous complete
  /// artifact. Throws std::out_of_range for unknown snapshots and
  /// std::runtime_error on I/O failure. (Fault sites kEnvelopeBitFlip /
  /// kEnvelopeTruncate corrupt the bytes between serialization and disk,
  /// modeling a torn write that the rename could not prevent.)
  void SaveModelToFile(const std::string& path, const std::string& name,
                       std::uint64_t version) const;

  /// LoadModel over the file at `path`. Throws core::CorruptArtifactError
  /// when the file is missing, truncated, or fails the CRC seal.
  Snapshot LoadModelFromFile(const std::string& path);

 private:
  mutable std::mutex mu_;
  /// name -> version -> snapshot. std::map keeps versions ordered so
  /// Latest()/Versions() read off the back/whole map directly.
  std::map<std::string, std::map<std::uint64_t, Snapshot>> models_;
};

}  // namespace pegasus::control
