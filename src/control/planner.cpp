#include "control/planner.hpp"

#include <sstream>

namespace pegasus::control {

namespace {

using core::CompiledModel;
using core::DimQuant;
using core::Op;
using core::OpKind;

bool QuantEqual(const std::vector<DimQuant>& a,
                const std::vector<DimQuant>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].fmt == b[i].fmt) || a[i].bias != b[i].bias ||
        a[i].domain_bits != b[i].domain_bits) {
      return false;
    }
  }
  return true;
}

/// Lowering-relevant tree geometry: the leaf hyperrectangles (entry match
/// regions). Centroids are training-side state and do not reach the switch.
bool BoxesEqual(const core::ClusterTree& a, const core::ClusterTree& b) {
  if (a.NumLeaves() != b.NumLeaves() || a.dim() != b.dim()) return false;
  for (std::size_t leaf = 0; leaf < a.NumLeaves(); ++leaf) {
    const core::LeafBox& ba = a.Box(leaf);
    const core::LeafBox& bb = b.Box(leaf);
    if (ba.lo != bb.lo || ba.hi != bb.hi) return false;
  }
  return true;
}

/// Same program skeleton: op kinds/wiring, value dims and table sites. When
/// this fails, per-site diffs are meaningless — everything reseals.
bool SameStructure(const CompiledModel& a, const CompiledModel& b) {
  const core::Program& pa = a.program();
  const core::Program& pb = b.program();
  if (pa.NumValues() != pb.NumValues() ||
      pa.ops().size() != pb.ops().size() || pa.input() != pb.input() ||
      pa.output() != pb.output()) {
    return false;
  }
  for (std::size_t v = 0; v < pa.NumValues(); ++v) {
    if (pa.value(v).dim != pb.value(v).dim) return false;
  }
  for (std::size_t oi = 0; oi < pa.ops().size(); ++oi) {
    const Op& oa = pa.ops()[oi];
    const Op& ob = pb.ops()[oi];
    if (oa.kind != ob.kind) return false;
    if (oa.kind == OpKind::kMap &&
        (oa.map.input != ob.map.input || oa.map.output != ob.map.output)) {
      return false;
    }
    if (a.tables()[oi].has_value() != b.tables()[oi].has_value()) {
      return false;
    }
  }
  return true;
}

/// Bytes the agent rewrites when one leaf's action data changes.
std::size_t LeafDataBytes(const CompiledModel& m, std::size_t out_dim) {
  return (out_dim * static_cast<std::size_t>(m.options().value_bits) + 7) / 8;
}

/// Full-table push estimate: every leaf's action words plus the ternary
/// value+mask planes of its match key (pre-CRC-expansion, i.e. the best
/// case the agent can stage).
std::size_t FullTableBytes(const CompiledModel& m, std::size_t op_index) {
  const core::Program& p = m.program();
  const Op& op = p.ops()[op_index];
  const core::FuzzyMapTable& t = *m.tables()[op_index];
  const std::size_t out_dim = p.value(op.map.output).dim;
  std::size_t key_bits = 0;
  for (const DimQuant& q : m.quant()[op.map.input]) {
    key_bits += static_cast<std::size_t>(q.domain_bits);
  }
  const std::size_t per_leaf =
      LeafDataBytes(m, out_dim) + (2 * key_bits + 7) / 8;
  return t.tree.NumLeaves() * per_leaf;
}

}  // namespace

const char* TableUpdateKindName(TableUpdateKind kind) {
  switch (kind) {
    case TableUpdateKind::kUnchanged:
      return "unchanged";
    case TableUpdateKind::kEntryDelta:
      return "entry-delta";
    case TableUpdateKind::kReseal:
      return "reseal";
  }
  return "?";
}

UpdatePlan PlanUpdate(const compiler::VersionedModel& from,
                      const compiler::VersionedModel& to) {
  if (from.compiled == nullptr || to.compiled == nullptr) {
    throw std::invalid_argument(
        "PlanUpdate: artifacts must carry their CompiledModel");
  }
  const CompiledModel& a = *from.compiled;
  const CompiledModel& b = *to.compiled;

  UpdatePlan plan;
  plan.from_version = from.version;
  plan.to_version = to.version;
  plan.structure_changed = !SameStructure(a, b);

  const core::Program& pb = b.program();
  for (std::size_t oi = 0; oi < pb.ops().size(); ++oi) {
    if (!b.tables()[oi].has_value()) continue;
    const Op& op = pb.ops()[oi];
    const core::FuzzyMapTable& tb = *b.tables()[oi];
    TableUpdate u;
    u.op_index = oi;
    u.table = "map_" + std::to_string(oi);
    u.leaves_after = tb.tree.NumLeaves();

    if (plan.structure_changed) {
      u.kind = TableUpdateKind::kReseal;
      u.bytes_to_push = FullTableBytes(b, oi);
      plan.tables.push_back(std::move(u));
      continue;
    }

    const core::FuzzyMapTable& ta = *a.tables()[oi];
    u.leaves_before = ta.tree.NumLeaves();
    const bool same_quant =
        QuantEqual(a.quant()[op.map.input], b.quant()[op.map.input]) &&
        QuantEqual(a.quant()[op.map.output], b.quant()[op.map.output]);
    // A changed expansion cap can flip a table between CRC-expanded
    // ternary and native range — entry indices would not line up, so a
    // delta is unsound even with identical geometry.
    const bool same_lowering = from.lowering.max_ternary_entries_per_table ==
                               to.lowering.max_ternary_entries_per_table;
    if (!same_quant || !same_lowering || !BoxesEqual(ta.tree, tb.tree)) {
      u.kind = TableUpdateKind::kReseal;
      u.bytes_to_push = FullTableBytes(b, oi);
    } else {
      for (std::size_t leaf = 0; leaf < tb.tree.NumLeaves(); ++leaf) {
        if (ta.leaf_raw[leaf] != tb.leaf_raw[leaf]) ++u.changed_leaves;
      }
      if (u.changed_leaves == 0) {
        u.kind = TableUpdateKind::kUnchanged;
      } else {
        u.kind = TableUpdateKind::kEntryDelta;
        // Emit the concrete patches with the same expansion helper the
        // lowering uses, then cost the plan from them — action words plus
        // value/mask match words per expanded entry, the exact formula
        // MatchActionTable::ApplyDelta reports (tests assert equality).
        const runtime::TableLowering tl = runtime::LowerMapEntries(
            b, oi, to.lowering.max_ternary_entries_per_table);
        for (std::size_t li = 0; li < tl.leaves.size(); ++li) {
          const runtime::LoweredLeaf& ll = tl.leaves[li];
          if (ta.leaf_raw[ll.leaf] == tb.leaf_raw[ll.leaf]) continue;
          std::vector<dataplane::TableEntry> entries;
          runtime::AppendLeafEntries(tl, ll, entries);
          for (std::size_t j = 0; j < entries.size(); ++j) {
            dataplane::EntryPatch patch;
            patch.entry_index = tl.entry_first[li] + j;
            patch.ternary = std::move(entries[j].ternary);
            patch.range_lo = std::move(entries[j].range_lo);
            patch.range_hi = std::move(entries[j].range_hi);
            patch.priority = entries[j].priority;
            patch.action_data = std::move(entries[j].action_data);
            u.patches.push_back(std::move(patch));
          }
        }
        std::size_t key_bits = 0;
        for (int w : tl.key_widths) key_bits += static_cast<std::size_t>(w);
        const std::size_t match_bytes = (2 * key_bits + 7) / 8;
        const auto value_bits =
            static_cast<std::size_t>(b.options().value_bits);
        for (const dataplane::EntryPatch& patch : u.patches) {
          u.bytes_to_push +=
              (patch.action_data.size() * value_bits + 7) / 8 + match_bytes;
        }
      }
    }
    plan.tables.push_back(std::move(u));
  }

  for (const TableUpdate& u : plan.tables) {
    switch (u.kind) {
      case TableUpdateKind::kUnchanged:
        ++plan.unchanged;
        break;
      case TableUpdateKind::kEntryDelta:
        ++plan.entry_delta;
        break;
      case TableUpdateKind::kReseal:
        ++plan.reseal;
        break;
    }
    plan.total_bytes_to_push += u.bytes_to_push;
  }
  return plan;
}

std::string FormatPlan(const UpdatePlan& plan) {
  std::ostringstream os;
  os << "update v" << plan.from_version << " -> v" << plan.to_version << ": "
     << plan.unchanged << " unchanged, " << plan.entry_delta
     << " entry-delta, " << plan.reseal << " reseal ("
     << plan.total_bytes_to_push << " bytes to push";
  if (plan.structure_changed) os << ", program structure changed";
  os << ")\n";
  for (const TableUpdate& u : plan.tables) {
    os << "  " << u.table << ": " << TableUpdateKindName(u.kind);
    if (u.kind == TableUpdateKind::kEntryDelta) {
      os << " (" << u.changed_leaves << "/" << u.leaves_after << " leaves";
    } else {
      os << " (" << u.leaves_after << " leaves";
    }
    if (u.bytes_to_push > 0) os << ", " << u.bytes_to_push << " B";
    os << ")\n";
  }
  return os.str();
}

std::vector<dataplane::TablePatch> CollectPatches(const UpdatePlan& plan) {
  if (plan.structure_changed || plan.reseal > 0) {
    throw std::invalid_argument(
        "CollectPatches: plan contains " +
        std::string(plan.structure_changed ? "a structure change"
                                           : "reseals") +
        " — apply it as a full swap, not a delta");
  }
  std::vector<dataplane::TablePatch> patches;
  for (const TableUpdate& u : plan.tables) {
    if (u.kind != TableUpdateKind::kEntryDelta || u.patches.empty()) continue;
    dataplane::TablePatch tp;
    tp.table = u.table;
    tp.patches = u.patches;
    patches.push_back(std::move(tp));
  }
  return patches;
}

std::vector<runtime::TableEntryPush> EmitPushSequence(
    const compiler::VersionedModel& model) {
  if (model.compiled == nullptr) {
    throw std::invalid_argument(
        "EmitPushSequence: artifact must carry its CompiledModel");
  }
  const CompiledModel& m = *model.compiled;
  const core::Program& p = m.program();
  std::vector<runtime::TableEntryPush> pushes;
  for (std::size_t oi = 0; oi < p.ops().size(); ++oi) {
    if (!m.tables()[oi].has_value()) continue;
    const runtime::TableLowering tl = runtime::LowerMapEntries(
        m, oi, model.lowering.max_ternary_entries_per_table);
    runtime::TableEntryPush push;
    push.table = tl.name;
    push.kind = tl.use_range ? dataplane::MatchKind::kRange
                             : dataplane::MatchKind::kTernary;
    push.entries.reserve(tl.num_entries);
    for (const runtime::LoweredLeaf& ll : tl.leaves) {
      runtime::AppendLeafEntries(tl, ll, push.entries);
    }
    pushes.push_back(std::move(push));
  }
  return pushes;
}

// ---------------------------------------------------------------------------
// Co-placement.
// ---------------------------------------------------------------------------

AdmissionError::AdmissionError(Resource resource, std::string model,
                               std::size_t required, std::size_t available)
    : std::runtime_error("co-placement rejected: " + model + " needs " +
                         std::to_string(required) + " " +
                         AdmissionResourceName(resource) + " but only " +
                         std::to_string(available) + " are available"),
      resource_(resource),
      model_(std::move(model)),
      required_(required),
      available_(available) {}

const char* AdmissionResourceName(AdmissionError::Resource r) {
  switch (r) {
    case AdmissionError::Resource::kStages:
      return "stages";
    case AdmissionError::Resource::kPhvBits:
      return "PHV bits";
    case AdmissionError::Resource::kSramBits:
      return "SRAM bits";
    case AdmissionError::Resource::kTcamBits:
      return "TCAM bits";
  }
  return "?";
}

JointPlacement PlanCoPlacement(
    const std::vector<const compiler::VersionedModel*>& models,
    const dataplane::SwitchModel& budget) {
  JointPlacement joint;
  for (std::size_t i = 0; i < models.size(); ++i) {
    const compiler::VersionedModel* m = models[i];
    if (m == nullptr || m->lowered == nullptr) {
      throw std::invalid_argument(
          "PlanCoPlacement: artifacts must carry their LoweredModel");
    }
    const std::string tag = m->name.empty()
                                ? "model[" + std::to_string(i) + "]"
                                : m->name + " v" + std::to_string(m->version);
    // Stage-sequential stacking transfers a model's per-stage packing only
    // if the target's per-stage budgets are at least as large as the ones
    // the model was lowered against.
    const dataplane::SwitchModel& own = m->lowering.switch_model;
    if (own.sram_bits_per_stage > budget.sram_bits_per_stage ||
        own.tcam_bits_per_stage > budget.tcam_bits_per_stage ||
        own.action_bus_bits_per_stage > budget.action_bus_bits_per_stage) {
      throw std::invalid_argument(
          "PlanCoPlacement: " + tag +
          " was lowered against wider per-stage budgets than the target "
          "switch offers — re-lower it for this switch first");
    }

    PlacementShare share;
    share.name = m->name;
    share.version = m->version;
    share.report = m->report;
    share.stages_used = m->report.stages_used;
    share.phv_bits = m->lowered->layout().TotalBits();
    share.stage_offset = joint.stages_used;

    if (joint.stages_used + share.stages_used > budget.num_stages) {
      throw AdmissionError(AdmissionError::Resource::kStages, tag,
                           joint.stages_used + share.stages_used,
                           budget.num_stages);
    }
    if (joint.phv_bits + share.phv_bits > budget.phv_bits) {
      throw AdmissionError(AdmissionError::Resource::kPhvBits, tag,
                           joint.phv_bits + share.phv_bits, budget.phv_bits);
    }
    if (joint.sram_bits + m->report.sram_bits > budget.TotalSramBits()) {
      throw AdmissionError(AdmissionError::Resource::kSramBits, tag,
                           joint.sram_bits + m->report.sram_bits,
                           budget.TotalSramBits());
    }
    if (joint.tcam_bits + m->report.tcam_bits > budget.TotalTcamBits()) {
      throw AdmissionError(AdmissionError::Resource::kTcamBits, tag,
                           joint.tcam_bits + m->report.tcam_bits,
                           budget.TotalTcamBits());
    }

    joint.stages_used += share.stages_used;
    joint.phv_bits += share.phv_bits;
    joint.sram_bits += m->report.sram_bits;
    joint.tcam_bits += m->report.tcam_bits;
    joint.stateful_bits_per_flow += m->report.stateful_bits_per_flow;
    joint.models.push_back(std::move(share));
  }
  return joint;
}

}  // namespace pegasus::control
