// UpdatePlanner — staging a model push onto a running dataplane, and
// admission control for co-placing several models on one switch.
//
// PlanUpdate diffs two compiled versions table-by-table (the Map tables are
// the only reconfigurable switch state; Partition/Concat are PHV wiring and
// SumReduce rides contributor actions) and classifies every table:
//
//   kUnchanged   — same clustering-tree geometry, same quantization, same
//                  leaf output words: the switch agent pushes nothing.
//   kEntryDelta  — same geometry/quantization but some leaf outputs moved
//                  (the retrain-in-place case, e.g. §4.4 output refinement
//                  over fresh traffic): only the changed entries' action
//                  data is rewritten, no TCAM churn.
//   kReseal      — geometry or quantization changed: the table must be
//                  re-expanded, re-placed and re-sealed wholesale.
//
// The plan is costed in bytes-to-push so operators can see what a swap
// will move before committing it. StreamServer::SwapModel applies the new
// version atomically either way — the plan is the control-plane estimate
// of agent work and a regression guard (retraining that silently reshapes
// every table shows up as all-reseal).
//
// PlanCoPlacement admits multiple concurrent models (e.g. a traffic
// classifier plus an anomaly detector) against ONE SwitchModel budget by
// stacking them stage-sequentially and summing their PHV footprints; an
// over-subscribed budget is rejected with a structured AdmissionError
// naming the exhausted resource and the exact requested/available bits.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "compiler/compiler.hpp"
#include "runtime/lowering.hpp"

namespace pegasus::control {

enum class TableUpdateKind { kUnchanged, kEntryDelta, kReseal };

const char* TableUpdateKindName(TableUpdateKind kind);

/// Per-table staging decision of an UpdatePlan.
struct TableUpdate {
  /// Program op index of the Map this table realizes; the lowered table is
  /// named "map_<op_index>".
  std::size_t op_index = 0;
  std::string table;
  TableUpdateKind kind = TableUpdateKind::kUnchanged;
  std::size_t leaves_before = 0;
  std::size_t leaves_after = 0;
  /// Leaves whose output words moved (kEntryDelta only).
  std::size_t changed_leaves = 0;
  /// Bytes the switch agent must write for this table: for a delta, the
  /// changed entries' action-data words PLUS their value/mask match words
  /// (the chunk-bitset / range-boundary state the dataplane rewrites) —
  /// identical to what MatchActionTable::ApplyDelta reports pushing; for a
  /// reseal, the whole table.
  std::size_t bytes_to_push = 0;
  /// Concrete entry patches realizing a kEntryDelta, post-CRC-expansion
  /// and addressed by lowered entry index — exactly what
  /// StreamServer::SwapModelDelta / Pipeline::ApplyDelta consume. Built
  /// with the same shared expansion helper as Lower(), so entry indices
  /// line up with the served table by construction.
  std::vector<dataplane::EntryPatch> patches;
};

struct UpdatePlan {
  std::uint64_t from_version = 0;
  std::uint64_t to_version = 0;
  /// The two versions' programs have different shapes (op count/kinds/dims
  /// or table sites) — every table reseals and per-site diffs are moot.
  bool structure_changed = false;
  std::vector<TableUpdate> tables;
  std::size_t unchanged = 0;
  std::size_t entry_delta = 0;
  std::size_t reseal = 0;
  std::size_t total_bytes_to_push = 0;
};

/// Diffs `from` -> `to`. Both artifacts must carry their CompiledModel
/// (CompileVersioned always does); throws std::invalid_argument otherwise.
UpdatePlan PlanUpdate(const compiler::VersionedModel& from,
                      const compiler::VersionedModel& to);

/// Renders the plan as the one-line-per-table report the lifecycle example
/// and bench print.
std::string FormatPlan(const UpdatePlan& plan);

/// Flattens a plan's kEntryDelta tables into per-table dataplane patches
/// for StreamServer::SwapModelDelta / Pipeline::ApplyDelta. Throws
/// std::invalid_argument when the plan contains a structure change or any
/// reseal — applying only the deltas of such a plan would serve a torn
/// model; the caller must take the full-swap path instead.
std::vector<dataplane::TablePatch> CollectPatches(const UpdatePlan& plan);

/// The full table-entry install sequence for `model` — what the switch
/// agent pushes after loading the p4gen program. Entry order matches the
/// served lowering exactly (same shared expansion helper); replaying it
/// through runtime::LowerFromPush reproduces the served artifact, which
/// the P4 conformance test asserts decision-for-decision.
std::vector<runtime::TableEntryPush> EmitPushSequence(
    const compiler::VersionedModel& model);

// ---------------------------------------------------------------------------
// Multi-model co-placement.
// ---------------------------------------------------------------------------

/// Thrown when a model set over-subscribes the switch. Structured so
/// callers can report (and tests can assert) exactly which budget broke.
class AdmissionError : public std::runtime_error {
 public:
  enum class Resource { kStages, kPhvBits, kSramBits, kTcamBits };

  AdmissionError(Resource resource, std::string model, std::size_t required,
                 std::size_t available);

  Resource resource() const { return resource_; }
  /// Name/version tag of the model whose admission failed.
  const std::string& model() const { return model_; }
  std::size_t required() const { return required_; }
  std::size_t available() const { return available_; }

 private:
  Resource resource_;
  std::string model_;
  std::size_t required_;
  std::size_t available_;
};

const char* AdmissionResourceName(AdmissionError::Resource r);

/// One admitted model's slice of the switch.
struct PlacementShare {
  std::string name;
  std::uint64_t version = 0;
  /// First pipeline stage assigned to this model; it occupies
  /// [stage_offset, stage_offset + stages_used).
  std::size_t stage_offset = 0;
  std::size_t stages_used = 0;
  std::size_t phv_bits = 0;
  dataplane::ResourceReport report;
};

/// The joint admission decision for a model set.
struct JointPlacement {
  std::vector<PlacementShare> models;
  std::size_t stages_used = 0;
  std::size_t phv_bits = 0;
  std::size_t sram_bits = 0;
  std::size_t tcam_bits = 0;
  std::size_t stateful_bits_per_flow = 0;
};

/// Admits `models` (in order) against one `budget`, stacking them
/// stage-sequentially: each model keeps the per-stage packing its own
/// lowering validated, shifted to start after its predecessor's last used
/// stage; the PHV is shared, so the models' header footprints add. Throws
/// AdmissionError on the first model that does not fit; throws
/// std::invalid_argument when a model was lowered against a *larger*
/// per-stage budget than `budget` offers (its per-stage packing would not
/// transfer).
JointPlacement PlanCoPlacement(
    const std::vector<const compiler::VersionedModel*>& models,
    const dataplane::SwitchModel& budget);

}  // namespace pegasus::control
