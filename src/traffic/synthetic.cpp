#include "traffic/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dataplane/flow_key.hpp"

namespace pegasus::traffic {

namespace {

/// Deterministic per-class payload template. The first four bytes act as a
/// stable "protocol magic" (real protocol headers are near-constant); the
/// rest carries class-specific structure.
std::array<std::uint8_t, kRawBytesPerPacket> MakeTemplate(
    std::uint64_t seed) {
  std::array<std::uint8_t, kRawBytesPerPacket> t{};
  std::mt19937_64 rng(seed * 2654435761ull + 17);
  std::uniform_int_distribution<int> dist(0, 255);
  for (auto& b : t) b = static_cast<std::uint8_t>(dist(rng));
  return t;
}

/// Square-ish alternation wave in [-1, 1] with the given period — the
/// temporal signature sequence models can pick up but min/max statistics
/// mostly cannot.
float Wave(std::size_t t, int period) {
  if (period <= 1) return 0.0f;
  const std::size_t phase = t % static_cast<std::size_t>(period);
  return phase < static_cast<std::size_t>((period + 1) / 2) ? 1.0f : -1.0f;
}

/// Synthetic client -> service 5-tuple: client in 10/8 with an ephemeral
/// port below the service range, service in 172.16/12 on the label's port.
/// Deterministic in `seed`; stored canonicalized so export -> import is
/// idempotent.
dataplane::FiveTuple MakeTuple(std::uint64_t seed, std::int32_t label) {
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 3);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> eph(1024, 19999);
  dataplane::FiveTuple t;
  t.version = 4;
  t.proto = (rng() & 1) != 0 ? dataplane::kProtoTcp : dataplane::kProtoUdp;
  t.src = {10, static_cast<std::uint8_t>(byte(rng)),
           static_cast<std::uint8_t>(byte(rng)),
           static_cast<std::uint8_t>(byte(rng))};
  t.dst = {172, static_cast<std::uint8_t>(16 + (byte(rng) & 0x0f)),
           static_cast<std::uint8_t>(byte(rng)),
           static_cast<std::uint8_t>(byte(rng))};
  t.src_port = static_cast<std::uint16_t>(eph(rng));
  t.dst_port = ServicePortForLabel(label);
  return dataplane::Canonical(t);
}

Flow MakeFlow(const ClassProfile& temporal, const ClassProfile& payload,
              std::int32_t label, std::size_t num_packets,
              std::mt19937_64& rng) {
  Flow flow;
  flow.label = label;
  // One draw from the flow RNG seeds the tuple generator, so the packet
  // stream below is unchanged from the pre-5-tuple generator (trained
  // models and accuracy numbers stay bit-identical).
  flow.tuple = MakeTuple(rng(), label);
  flow.key = dataplane::DigestTuple(flow.tuple);
  flow.packets.resize(num_packets);

  std::normal_distribution<float> base_len(temporal.len_base_mu,
                                           temporal.len_base_sigma);
  std::normal_distribution<float> base_ipd(temporal.ipd_log_mu,
                                           temporal.ipd_log_sigma);
  const float flow_len_base = base_len(rng);
  const float flow_ipd_base = base_ipd(rng);

  std::normal_distribution<float> len_noise(0.0f, temporal.len_noise);
  std::normal_distribution<float> ipd_noise(0.0f, temporal.ipd_log_noise);
  std::normal_distribution<float> byte_jitter(0.0f, 5.0f);
  std::uniform_real_distribution<float> unit(0.0f, 1.0f);
  std::uniform_int_distribution<int> byte_uniform(0, 255);

  const auto tmpl = MakeTemplate(payload.byte_template_seed);

  std::uint64_t ts = 0;
  for (std::size_t i = 0; i < num_packets; ++i) {
    Packet& pkt = flow.packets[i];
    const float len = flow_len_base +
                      temporal.len_amp * Wave(i, temporal.len_period) +
                      len_noise(rng);
    pkt.len = static_cast<std::uint16_t>(
        std::clamp(len, 40.0f, 1500.0f));
    if (i > 0) {
      const float log_ipd =
          flow_ipd_base + temporal.ipd_log_amp * Wave(i, temporal.ipd_period) +
          ipd_noise(rng);
      const double ipd_us = std::exp2(std::clamp(log_ipd, 0.0f, 21.0f));
      ts += static_cast<std::uint64_t>(ipd_us);
    }
    pkt.ts_us = ts;
    for (std::size_t b = 0; b < kRawBytesPerPacket; ++b) {
      // Protocol magic (first 4 bytes) is 4x more stable than the body.
      const float noise_p =
          b < 4 ? payload.byte_noise * 0.25f : payload.byte_noise;
      if (unit(rng) < noise_p) {
        pkt.bytes[b] = static_cast<std::uint8_t>(byte_uniform(rng));
      } else {
        const int v = static_cast<int>(tmpl[b]) +
                      static_cast<int>(std::lround(byte_jitter(rng)));
        pkt.bytes[b] = static_cast<std::uint8_t>(std::clamp(v, 0, 255));
      }
    }
  }
  return flow;
}

}  // namespace

std::uint16_t ServicePortForLabel(std::int32_t label) {
  return label >= 0
             ? static_cast<std::uint16_t>(20000 + label % 10000)
             : static_cast<std::uint16_t>(30000 + (-(label + 1)) % 10000);
}

Dataset Generate(const DatasetSpec& spec) {
  Dataset ds;
  ds.name = spec.name;
  for (const ClassProfile& c : spec.classes) ds.class_names.push_back(c.name);

  std::mt19937_64 rng(spec.seed);
  std::uniform_int_distribution<std::size_t> pkt_count(spec.min_packets,
                                                       spec.max_packets);
  std::uniform_real_distribution<float> unit(0.0f, 1.0f);
  std::uniform_int_distribution<std::size_t> other(0,
                                                   spec.classes.size() - 1);

  // Shared payload profile for "generic" (encrypted/compressed) flows:
  // one template for every class, high per-byte entropy.
  ClassProfile generic;
  generic.byte_template_seed = 0xEEEE;
  generic.byte_noise = 0.9f;

  for (std::size_t ci = 0; ci < spec.classes.size(); ++ci) {
    for (std::size_t f = 0; f < spec.flows_per_class; ++f) {
      std::size_t temporal_class = ci;
      if (spec.classes.size() > 1 && unit(rng) < spec.class_mix) {
        do {
          temporal_class = other(rng);
        } while (temporal_class == ci);
      }
      const bool generic_payload = unit(rng) < spec.generic_payload_frac;
      ds.flows.push_back(MakeFlow(
          spec.classes[temporal_class],
          generic_payload ? generic : spec.classes[ci],
          static_cast<std::int32_t>(ci), pkt_count(rng), rng));
    }
  }
  // Interleave classes so train/test splits are class-balanced prefixes.
  std::shuffle(ds.flows.begin(), ds.flows.end(), rng);
  return ds;
}

std::vector<Flow> GenerateFlows(const ClassProfile& profile,
                                std::size_t num_flows, std::int32_t label,
                                std::size_t min_packets,
                                std::size_t max_packets, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pkt_count(min_packets,
                                                       max_packets);
  std::vector<Flow> flows;
  flows.reserve(num_flows);
  for (std::size_t f = 0; f < num_flows; ++f) {
    flows.push_back(MakeFlow(profile, profile, label, pkt_count(rng), rng));
  }
  return flows;
}

DatasetSpec PeerRushSpec(std::size_t flows_per_class, std::uint64_t seed) {
  DatasetSpec spec;
  spec.name = "PeerRush";
  spec.flows_per_class = flows_per_class;
  spec.class_mix = 0.05f;
  spec.generic_payload_frac = 0.06f;
  spec.seed = seed;
  spec.classes = {
      // eMule: small chunked transfers with tight request/response swing.
      {"eMule", 420.0f, 60.0f, 320.0f, 2, 45.0f, 11.0f, 0.7f, 1.4f, 2, 0.35f,
       0xA001, 0.24f},
      // uTorrent: large pieces, slower alternation.
      {"uTorrent", 940.0f, 85.0f, 420.0f, 4, 55.0f, 9.4f, 0.7f, 1.1f, 4,
       0.35f, 0xA002, 0.24f},
      // Vuze: mid-sized pieces, 3-phase pipelining.
      {"Vuze", 660.0f, 70.0f, 380.0f, 3, 50.0f, 10.2f, 0.7f, 1.2f, 3, 0.35f,
       0xA003, 0.24f},
  };
  return spec;
}

DatasetSpec CiciotSpec(std::size_t flows_per_class, std::uint64_t seed) {
  DatasetSpec spec;
  spec.name = "CICIOT";
  spec.flows_per_class = flows_per_class;
  // IoT states share hardware and firmware, so flows frequently interleave
  // behaviours — the hardest dataset for every model in Table 5.
  spec.class_mix = 0.10f;
  spec.generic_payload_frac = 0.22f;
  spec.seed = seed;
  spec.classes = {
      // Power: periodic telemetry bursts, lengths overlap Idle heavily.
      {"Power", 130.0f, 45.0f, 45.0f, 2, 30.0f, 13.0f, 1.0f, 0.8f, 2, 0.4f,
       0xB001, 0.42f},
      // Idle: keepalives — nearly Power's lengths but a 6-phase cadence.
      {"Idle", 150.0f, 45.0f, 35.0f, 6, 30.0f, 13.4f, 1.0f, 0.7f, 6, 0.4f,
       0xB002, 0.42f},
      // Interact: user-driven, bigger and faster.
      {"Interact", 310.0f, 90.0f, 190.0f, 3, 60.0f, 10.0f, 1.2f, 1.3f, 3,
       0.45f, 0xB003, 0.42f},
  };
  return spec;
}

DatasetSpec IscxVpnSpec(std::size_t flows_per_class, std::uint64_t seed) {
  DatasetSpec spec;
  spec.name = "ISCXVPN";
  spec.flows_per_class = flows_per_class;
  // VPN tunnelling multiplexes application behaviours over one wire
  // protocol: length/IPD marginals overlap badly across classes, while the
  // (decrypted-side) payload structure stays distinctive.
  spec.class_mix = 0.13f;
  spec.generic_payload_frac = 0.02f;
  spec.seed = seed;
  spec.classes = {
      {"Email", 520.0f, 150.0f, 300.0f, 5, 80.0f, 12.0f, 1.2f, 1.2f, 5,
       0.45f, 0xC001, 0.20f},
      {"Chat", 210.0f, 80.0f, 110.0f, 2, 50.0f, 12.5f, 1.2f, 1.0f, 2, 0.45f,
       0xC002, 0.20f},
      {"Streaming", 1180.0f, 100.0f, 120.0f, 8, 60.0f, 8.6f, 0.6f, 0.7f, 8,
       0.3f, 0xC003, 0.20f},
      {"FTP", 1290.0f, 120.0f, 210.0f, 7, 70.0f, 8.0f, 0.8f, 0.8f, 7, 0.3f,
       0xC004, 0.20f},
      {"VoIP", 230.0f, 45.0f, 35.0f, 2, 25.0f, 9.7f, 0.4f, 0.3f, 2, 0.2f,
       0xC005, 0.20f},
      {"P2P", 820.0f, 200.0f, 380.0f, 3, 90.0f, 9.5f, 1.0f, 1.1f, 3, 0.4f,
       0xC006, 0.20f},
  };
  return spec;
}

std::vector<ClassProfile> AttackProfiles() {
  return {
      // Htbot: proxy relay traffic — deliberately benign-looking (hardest,
      // lowest AUC in Figure 8).
      {"Htbot", 620.0f, 160.0f, 380.0f, 3, 70.0f, 10.1f, 1.0f, 1.1f, 3,
       0.4f, 0xD001, 0.12f},
      // SSDP reflection flood: constant-size, near-constant-rate (easiest).
      {"Flood", 320.0f, 6.0f, 2.0f, 1, 3.0f, 6.0f, 0.15f, 0.0f, 1, 0.05f,
       0xD002, 0.05f},
      // Cridex: regular C2 beaconing with long quiet gaps.
      {"Cridex", 300.0f, 30.0f, 240.0f, 2, 25.0f, 14.2f, 0.5f, 0.6f, 2,
       0.2f, 0xD003, 0.10f},
      // Virut: IRC-controlled bot, bursty medium flows.
      {"Virut", 520.0f, 170.0f, 330.0f, 3, 80.0f, 10.6f, 1.1f, 1.0f, 3,
       0.4f, 0xD004, 0.12f},
      // Neris: spam + click fraud mix.
      {"Neris", 360.0f, 110.0f, 260.0f, 4, 70.0f, 10.4f, 1.1f, 1.0f, 4,
       0.4f, 0xD005, 0.12f},
      // Geodo: banking trojan — very regular exfil bursts over slow C2
      // links (regularity, not marginals, is what separates it).
      {"Geodo", 520.0f, 25.0f, 290.0f, 2, 25.0f, 12.6f, 0.4f, 0.9f, 2,
       0.15f, 0xD006, 0.10f},
  };
}

// ---- flow-churn stress scenario ---------------------------------------

namespace {

/// splitmix64 finalizer — a bijection on u64, so distinct flow counters
/// yield distinct digests (no accidental flow merging in the stressed
/// table, which would corrupt the hit-rate measurements).
std::uint64_t ChurnDigest(std::uint64_t seed, std::uint64_t flow_counter) {
  std::uint64_t x = seed + flow_counter * 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::size_t UniformIn(std::mt19937_64& rng, std::size_t lo, std::size_t hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<std::size_t>(rng() % (hi - lo + 1));
}

}  // namespace

ChurnGenerator::ChurnGenerator(const ChurnSpec& spec)
    : spec_(spec), rng_(spec.seed) {
  if (spec_.live_flows == 0) {
    throw std::invalid_argument("ChurnGenerator: zero live flows");
  }
  if (spec_.mouse_packets_min == 0 || spec_.elephant_packets_min == 0) {
    throw std::invalid_argument("ChurnGenerator: zero per-flow packets");
  }
  elephants_ = static_cast<std::size_t>(
      spec_.elephant_frac * static_cast<double>(spec_.live_flows));
  elephants_ = std::min(elephants_, spec_.live_flows);
  pool_.resize(spec_.live_flows);
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    pool_[i] = NewFlow(i < elephants_);
  }
  next_scan_at_ = spec_.scan_every;
  next_flood_at_ = spec_.flood_every;
}

ChurnGenerator::LiveFlow ChurnGenerator::NewFlow(bool elephant) {
  LiveFlow f;
  f.flow_id = next_flow_id_++;
  f.digest = ChurnDigest(spec_.seed, f.flow_id);
  if (elephant) {
    f.remaining = static_cast<std::uint32_t>(UniformIn(
        rng_, spec_.elephant_packets_min, spec_.elephant_packets_max));
    f.label = 1;
    f.len_base = static_cast<std::uint16_t>(UniformIn(rng_, 200, 1400));
  } else {
    f.remaining = static_cast<std::uint32_t>(
        UniformIn(rng_, spec_.mouse_packets_min, spec_.mouse_packets_max));
    f.label = 0;
    f.len_base = static_cast<std::uint16_t>(UniformIn(rng_, 60, 200));
  }
  return f;
}

void ChurnGenerator::EmitFrom(std::uint64_t digest, std::uint32_t flow_id,
                              std::uint32_t index, std::int32_t label,
                              std::uint16_t len, TracePacket& out) {
  ts_us_ += 1 + (rng_() & 7);
  buf_.ts_us = ts_us_;
  buf_.len = len;
  // A stable per-flow header (digest + per-flow packet index) so payloads
  // are flow-identifying even without fill; the rest of the buffer is
  // reused verbatim between packets unless fill_payload asks for noise.
  for (int i = 0; i < 8; ++i) {
    buf_.bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(digest >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    buf_.bytes[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(index >> (8 * i));
  }
  if (spec_.fill_payload) {
    for (std::size_t i = 12; i < kRawBytesPerPacket; ++i) {
      buf_.bytes[i] = static_cast<std::uint8_t>(rng_() & 0xff);
    }
  }
  out.ts_us = ts_us_;
  out.flow = flow_id;
  out.index = index;
  out.key.digest = digest;
  out.label = label;
  out.packet = &buf_;
}

bool ChurnGenerator::Next(TracePacket& out) {
  if (emitted_ >= spec_.packets) return false;
  // Burst arming: scan first when both are due; the flood fires as soon as
  // the scan run drains (next_flood_at_ has already passed). Everything is
  // keyed on the emitted-packet counter, so the schedule is deterministic.
  if (burst_left_ == 0) {
    if (spec_.scan_every != 0 && spec_.scan_burst != 0 &&
        emitted_ >= next_scan_at_) {
      burst_left_ = spec_.scan_burst;
      burst_label_ = kChurnScanLabel;
      next_scan_at_ += spec_.scan_every;
    } else if (spec_.flood_every != 0 && spec_.flood_burst != 0 &&
               emitted_ >= next_flood_at_) {
      burst_left_ = spec_.flood_burst;
      burst_label_ = kChurnFloodLabel;
      next_flood_at_ += spec_.flood_every;
    }
  }
  ++emitted_;
  if (burst_left_ != 0) {
    // One never-repeating single-packet flow per burst slot — the pattern
    // that fills a flow cache with dead entries.
    --burst_left_;
    const std::uint32_t id = next_flow_id_++;
    const std::uint64_t digest = ChurnDigest(spec_.seed, id);
    const std::uint16_t len =
        burst_label_ == kChurnScanLabel ? std::uint16_t{60} : std::uint16_t{512};
    (burst_label_ == kChurnScanLabel ? scan_packets_ : flood_packets_)++;
    EmitFrom(digest, id, 0, burst_label_, len, out);
    return true;
  }
  const std::size_t slot = static_cast<std::size_t>(rng_() % pool_.size());
  LiveFlow& f = pool_[slot];
  const std::uint16_t len = static_cast<std::uint16_t>(
      f.len_base + static_cast<std::uint16_t>(rng_() & 63));
  EmitFrom(f.digest, f.flow_id, f.index++, f.label, len, out);
  if (--f.remaining == 0) {
    // Retire and replace in place: the live working set stays at exactly
    // live_flows while the identity under each slot churns.
    f = NewFlow(slot < elephants_);
    ++retired_;
  }
  return true;
}

ChurnTrace MaterializeChurn(const ChurnSpec& spec) {
  ChurnGenerator gen(spec);
  ChurnTrace out;
  out.packets.reserve(spec.packets);
  out.trace.reserve(spec.packets);
  TracePacket pkt;
  while (gen.Next(pkt)) {
    out.packets.push_back(*pkt.packet);
    pkt.packet = nullptr;  // re-aimed below once the vector stops moving
    out.trace.push_back(pkt);
  }
  for (std::size_t i = 0; i < out.trace.size(); ++i) {
    out.trace[i].packet = &out.packets[i];
  }
  return out;
}

}  // namespace pegasus::traffic
