#include "traffic/stream.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace pegasus::traffic {

void OnlineFeatureExtractor::Update(OnlineFlowState& s, const Packet& pkt,
                                    std::uint64_t ts_us) const {
  // Real captures reorder: a packet timestamped before its predecessor must
  // clamp to IPD 0, not wrap the unsigned subtraction into a ~2^64 us gap
  // (which would pin the quantized IPD — and the flow's max — at 255).
  const std::uint64_t ipd_us = (s.packets == 0 || ts_us < s.last_ts_us)
                                   ? 0
                                   : ts_us - s.last_ts_us;
  const std::uint8_t ql = QuantizeLen(pkt.len);
  const std::uint8_t qi = QuantizeIpd(ipd_us);
  s.min_len = std::min(s.min_len, ql);
  s.max_len = std::max(s.max_len, ql);
  if (s.packets > 0) {
    // The first packet has no IPD; min/max only track real gaps, exactly
    // like the offline extractor's j > 0 guard.
    s.min_ipd = std::min(s.min_ipd, qi);
    s.max_ipd = std::max(s.max_ipd, qi);
  }
  const std::size_t slot = s.packets % kWindow;
  s.fuzzy_len[slot] = ql;
  s.fuzzy_ipd[slot] = qi;
  s.last_ts_us = ts_us;
  ++s.packets;
}

void OnlineFeatureExtractor::Update(OnlineFlowStateRaw& s, const Packet& pkt,
                                    std::uint64_t ts_us) const {
  s.raw[s.base.packets % kWindow] = pkt.bytes;
  Update(s.base, pkt, ts_us);
}

namespace {

void RequireFull(const OnlineFlowState& s) {
  if (!s.WindowFull()) {
    throw std::logic_error(
        "OnlineFeatureExtractor: emit before the window filled");
  }
}

}  // namespace

void OnlineFeatureExtractor::EmitStat(const OnlineFlowState& s,
                                      float* out) const {
  RequireFull(s);
  out[0] = s.min_len;
  out[1] = s.max_len;
  out[2] = s.min_ipd;
  out[3] = s.max_ipd;
  const std::size_t newest = (s.packets - 1) % kWindow;
  out[4] = s.fuzzy_len[newest];
  out[5] = s.fuzzy_ipd[newest];
  // Short history: previous 5 packets' (len, ipd), newest-first — the same
  // layout ExtractStatFeatures emits.
  for (std::size_t h = 0; h < 5; ++h) {
    const std::size_t idx = (s.packets - 2 - h) % kWindow;
    out[6 + 2 * h] = s.fuzzy_len[idx];
    out[7 + 2 * h] = s.fuzzy_ipd[idx];
  }
}

void OnlineFeatureExtractor::EmitSeq(const OnlineFlowState& s,
                                     float* out) const {
  RequireFull(s);
  for (std::size_t w = 0; w < kWindow; ++w) {
    // Oldest slot is packets % kWindow; walk forward in arrival order.
    const std::size_t idx = (s.packets + w) % kWindow;
    out[2 * w] = s.fuzzy_len[idx];
    out[2 * w + 1] = s.fuzzy_ipd[idx];
  }
}

void OnlineFeatureExtractor::EmitRaw(const OnlineFlowStateRaw& s,
                                     float* out) const {
  RequireFull(s.base);
  for (std::size_t w = 0; w < kWindow; ++w) {
    const std::size_t idx = (s.base.packets + w) % kWindow;
    float* dst = out + w * kRawBytesPerPacket;
    for (std::size_t b = 0; b < kRawBytesPerPacket; ++b) {
      dst[b] = s.raw[idx][b];
    }
  }
}

std::vector<TracePacket> MergeTrace(std::span<const Flow* const> flows,
                                    const MergeOptions& opts) {
  std::size_t total = 0;
  std::uint64_t max_duration = 0;
  for (const Flow* f : flows) {
    total += f->packets.size();
    if (!f->packets.empty()) {
      max_duration = std::max(max_duration, f->packets.back().ts_us);
    }
  }
  const std::uint64_t horizon =
      opts.horizon_us != 0 ? opts.horizon_us : max_duration;

  std::mt19937_64 rng(opts.seed);
  std::uniform_int_distribution<std::uint64_t> start(0, horizon);
  std::vector<TracePacket> out;
  out.reserve(total);
  for (std::size_t fi = 0; fi < flows.size(); ++fi) {
    const Flow& flow = *flows[fi];
    const std::uint64_t offset = start(rng);
    for (std::size_t pi = 0; pi < flow.packets.size(); ++pi) {
      TracePacket tp;
      tp.ts_us = offset + flow.packets[pi].ts_us;
      tp.flow = static_cast<std::uint32_t>(fi);
      tp.index = static_cast<std::uint32_t>(pi);
      tp.key = flow.key;
      tp.label = flow.label;
      tp.packet = &flow.packets[pi];
      out.push_back(tp);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TracePacket& a, const TracePacket& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.flow != b.flow) return a.flow < b.flow;
              return a.index < b.index;
            });
  return out;
}

std::vector<TracePacket> MergeTrace(const std::vector<Flow>& flows,
                                    const MergeOptions& opts) {
  std::vector<const Flow*> ptrs;
  ptrs.reserve(flows.size());
  for (const Flow& f : flows) ptrs.push_back(&f);
  return MergeTrace(ptrs, opts);
}

}  // namespace pegasus::traffic
