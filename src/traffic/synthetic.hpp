// Synthetic traffic generation calibrated to the paper's three benign
// datasets and two attack families (DESIGN.md §2 documents the
// substitution).
//
// Each traffic class is a generative profile over three observation
// channels, chosen so that the *information content per channel* mirrors
// the real datasets:
//
//  * marginal packet-length / IPD distributions  -> what flow-level
//    min/max statistics can see (Leo, N3IC, MLP-B);
//  * temporal structure (per-flow alternation period & amplitude) -> what
//    windowed sequence models can additionally see (BoS, RNN-B, CNN-B/M);
//  * payload byte templates -> what raw-byte models can additionally see
//    (CNN-L), near-noiseless so large input scale pays off as in Table 5.
//
// A dataset-level `class_mix` fraction of flows borrows another class's
// *temporal* behaviour while keeping its own payload bytes — modelling
// protocol multiplexing (e.g. chat inside a VPN tunnel) that caps the
// accuracy of length/IPD-only models but not byte models, which is exactly
// the regime ISCXVPN exhibits in Table 5.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "traffic/packet.hpp"
#include "traffic/stream.hpp"

namespace pegasus::traffic {

/// Generative profile of one traffic class.
struct ClassProfile {
  std::string name;
  // Packet length model: per-flow base ~ N(len_base_mu, len_base_sigma),
  // per-packet len = base + len_amp * wave(t; len_period) + noise.
  float len_base_mu = 500.0f;
  float len_base_sigma = 80.0f;
  float len_amp = 300.0f;
  int len_period = 2;
  float len_noise = 40.0f;
  // Inter-packet delay model in log2(microseconds).
  float ipd_log_mu = 10.0f;
  float ipd_log_sigma = 0.8f;
  float ipd_log_amp = 1.0f;
  int ipd_period = 2;
  float ipd_log_noise = 0.35f;
  // Payload model: a deterministic per-class template with per-byte jitter;
  // `byte_noise` is the probability a byte is replaced by uniform noise.
  std::uint64_t byte_template_seed = 0;
  float byte_noise = 0.1f;
};

struct DatasetSpec {
  std::string name;
  std::vector<ClassProfile> classes;
  std::size_t flows_per_class = 300;
  std::size_t min_packets = 24;
  std::size_t max_packets = 96;
  /// Fraction of flows whose temporal behaviour is borrowed from a random
  /// other class (payload stays class-true).
  float class_mix = 0.05f;
  /// Fraction of flows carrying a *generic* payload shared by all classes
  /// (encrypted/compressed content with no protocol signature). These flows
  /// are classifiable from lengths/IPDs only, capping what raw-byte models
  /// can reach — the reason CNN-L tops out below 1.0 in Table 5.
  float generic_payload_frac = 0.0f;
  std::uint64_t seed = 42;
};

/// The service port a synthetic flow's 5-tuple encodes its label on
/// (dst_port before canonicalization): benign labels L >= 0 map into
/// [20000, 30000), attack labels L < 0 into [30000, 40000). Client-side
/// ephemeral ports are drawn strictly below 20000, so an
/// io::FlowLabeler port rule built from this function recovers every
/// label exactly — the self-hosting pcap fixture's ground-truth channel.
std::uint16_t ServicePortForLabel(std::int32_t label);

/// Generates a labelled dataset from the spec. Deterministic in the seed.
/// Every flow carries a synthetic canonical 5-tuple (IPv4, TCP or UDP,
/// service port = ServicePortForLabel(label)) and key =
/// dataplane::DigestTuple(tuple), so generated datasets survive a pcap
/// export -> import round trip bit-identically.
Dataset Generate(const DatasetSpec& spec);

/// Generates `num_flows` flows of a single (attack) profile, labelled
/// `label`. Used by the Figure 8 injection harness.
std::vector<Flow> GenerateFlows(const ClassProfile& profile,
                                std::size_t num_flows, std::int32_t label,
                                std::size_t min_packets,
                                std::size_t max_packets, std::uint64_t seed);

// ---- calibrated dataset specs (paper §7.1) ---------------------------

DatasetSpec PeerRushSpec(std::size_t flows_per_class = 300,
                         std::uint64_t seed = 1001);
DatasetSpec CiciotSpec(std::size_t flows_per_class = 300,
                       std::uint64_t seed = 2002);
DatasetSpec IscxVpnSpec(std::size_t flows_per_class = 200,
                        std::uint64_t seed = 3003);

/// All six attack profiles of §7.4 (five USTC-TFC2016 malware families plus
/// the Kitsune SSDP reflection flood), in Figure 8's legend order:
/// Htbot, Flood, Cridex, Virut, Neris, Geodo.
std::vector<ClassProfile> AttackProfiles();

// ---- flow-churn stress scenario (ROADMAP: million-flow state) ---------
//
// The calibrated datasets above model *what* flows look like; the churn
// scenario models *how many* of them exist at once and how fast they turn
// over — the axis that stresses the FlowTable rather than the model. A
// fixed-size pool of live flows (mice that retire after a handful of
// packets and are replaced by fresh flows, plus a small population of
// long-lived elephants carrying most packets) produces a steady-state
// working set of exactly `live_flows` concurrent flows with continuous
// insert/evict churn at the table, punctuated by port-scan and SYN-flood
// bursts of single-packet never-repeating flows — the classic cache-killer
// patterns a real border switch sees.

/// Labels carried by churn traffic: benign mice/elephants are 0/1, bursts
/// use the attack (< 0) label range like AttackProfiles() flows do.
inline constexpr std::int32_t kChurnScanLabel = -1;
inline constexpr std::int32_t kChurnFloodLabel = -2;

struct ChurnSpec {
  /// Steady-state live working set (concurrent non-burst flows). The
  /// scenario axis: 10K → 1M.
  std::size_t live_flows = 10'000;
  /// Fraction of the live pool that is long-lived elephants.
  double elephant_frac = 0.02;
  /// Per-flow packet budgets: mice die young (constant re-insert pressure),
  /// elephants persist (the entries worth keeping resident).
  std::size_t mouse_packets_min = 6;
  std::size_t mouse_packets_max = 12;
  std::size_t elephant_packets_min = 512;
  std::size_t elephant_packets_max = 4096;
  /// Port-scan bursts: every `scan_every` emitted packets, a run of
  /// `scan_burst` single-packet probe flows with fresh digests (0 = off).
  std::size_t scan_every = 50'000;
  std::size_t scan_burst = 512;
  /// SYN-flood bursts: same shape, bigger and rarer (0 = off).
  std::size_t flood_every = 200'000;
  std::size_t flood_burst = 4'096;
  /// Total packets to emit (burst packets included).
  std::size_t packets = 100'000;
  /// Fill payload bytes with per-packet noise (slower; only raw-byte
  /// models care). Off: payloads carry just the digest/index header.
  bool fill_payload = false;
  std::uint64_t seed = 7'001;
};

/// Streaming churn source: Next() emits one packet at a time from the
/// evolving live-flow pool, reusing one internal Packet buffer (the
/// PacketSource contract — wrap in runtime::GeneratorPacketSource to feed
/// a StreamServer, or in io::TraceReplayer for paced replay). Deterministic
/// in the spec: same spec -> bit-identical packet sequence. Flow ids are
/// unique and monotonic; digests are unique per flow (splitmix64 of the
/// flow counter), so a retired mouse is never confused with its successor.
class ChurnGenerator {
 public:
  explicit ChurnGenerator(const ChurnSpec& spec);

  /// Emits the next packet; false once `spec.packets` have been produced.
  /// `out.packet` points at the internal buffer, valid until the next call.
  bool Next(TracePacket& out);

  const ChurnSpec& spec() const { return spec_; }
  /// Flows created so far (live pool + retired + burst probes).
  std::uint64_t flows_started() const { return next_flow_id_; }
  /// Pool flows that exhausted their packet budget and were replaced.
  std::uint64_t flows_retired() const { return retired_; }
  std::uint64_t packets_emitted() const { return emitted_; }
  std::uint64_t scan_packets() const { return scan_packets_; }
  std::uint64_t flood_packets() const { return flood_packets_; }

 private:
  struct LiveFlow {
    std::uint64_t digest = 0;
    std::uint32_t flow_id = 0;
    std::uint32_t index = 0;
    std::uint32_t remaining = 0;
    std::int32_t label = 0;
    std::uint16_t len_base = 0;
  };

  LiveFlow NewFlow(bool elephant);
  void EmitFrom(std::uint64_t digest, std::uint32_t flow_id,
                std::uint32_t index, std::int32_t label, std::uint16_t len,
                TracePacket& out);

  ChurnSpec spec_;
  std::mt19937_64 rng_;
  std::vector<LiveFlow> pool_;
  std::size_t elephants_ = 0;
  Packet buf_{};
  std::uint64_t ts_us_ = 0;
  std::uint32_t next_flow_id_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t scan_packets_ = 0;
  std::uint64_t flood_packets_ = 0;
  std::uint64_t next_scan_at_ = 0;
  std::uint64_t next_flood_at_ = 0;
  std::size_t burst_left_ = 0;
  std::int32_t burst_label_ = 0;
};

/// A fully materialized churn run (tests and exact-replay comparisons;
/// the 1M-flow sweeps stream through ChurnGenerator instead). trace[i]
/// borrows packets[i], so ChurnTrace is self-contained and movable.
struct ChurnTrace {
  std::vector<Packet> packets;
  std::vector<TracePacket> trace;
};

ChurnTrace MaterializeChurn(const ChurnSpec& spec);

}  // namespace pegasus::traffic
