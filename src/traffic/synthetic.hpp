// Synthetic traffic generation calibrated to the paper's three benign
// datasets and two attack families (DESIGN.md §2 documents the
// substitution).
//
// Each traffic class is a generative profile over three observation
// channels, chosen so that the *information content per channel* mirrors
// the real datasets:
//
//  * marginal packet-length / IPD distributions  -> what flow-level
//    min/max statistics can see (Leo, N3IC, MLP-B);
//  * temporal structure (per-flow alternation period & amplitude) -> what
//    windowed sequence models can additionally see (BoS, RNN-B, CNN-B/M);
//  * payload byte templates -> what raw-byte models can additionally see
//    (CNN-L), near-noiseless so large input scale pays off as in Table 5.
//
// A dataset-level `class_mix` fraction of flows borrows another class's
// *temporal* behaviour while keeping its own payload bytes — modelling
// protocol multiplexing (e.g. chat inside a VPN tunnel) that caps the
// accuracy of length/IPD-only models but not byte models, which is exactly
// the regime ISCXVPN exhibits in Table 5.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "traffic/packet.hpp"

namespace pegasus::traffic {

/// Generative profile of one traffic class.
struct ClassProfile {
  std::string name;
  // Packet length model: per-flow base ~ N(len_base_mu, len_base_sigma),
  // per-packet len = base + len_amp * wave(t; len_period) + noise.
  float len_base_mu = 500.0f;
  float len_base_sigma = 80.0f;
  float len_amp = 300.0f;
  int len_period = 2;
  float len_noise = 40.0f;
  // Inter-packet delay model in log2(microseconds).
  float ipd_log_mu = 10.0f;
  float ipd_log_sigma = 0.8f;
  float ipd_log_amp = 1.0f;
  int ipd_period = 2;
  float ipd_log_noise = 0.35f;
  // Payload model: a deterministic per-class template with per-byte jitter;
  // `byte_noise` is the probability a byte is replaced by uniform noise.
  std::uint64_t byte_template_seed = 0;
  float byte_noise = 0.1f;
};

struct DatasetSpec {
  std::string name;
  std::vector<ClassProfile> classes;
  std::size_t flows_per_class = 300;
  std::size_t min_packets = 24;
  std::size_t max_packets = 96;
  /// Fraction of flows whose temporal behaviour is borrowed from a random
  /// other class (payload stays class-true).
  float class_mix = 0.05f;
  /// Fraction of flows carrying a *generic* payload shared by all classes
  /// (encrypted/compressed content with no protocol signature). These flows
  /// are classifiable from lengths/IPDs only, capping what raw-byte models
  /// can reach — the reason CNN-L tops out below 1.0 in Table 5.
  float generic_payload_frac = 0.0f;
  std::uint64_t seed = 42;
};

/// The service port a synthetic flow's 5-tuple encodes its label on
/// (dst_port before canonicalization): benign labels L >= 0 map into
/// [20000, 30000), attack labels L < 0 into [30000, 40000). Client-side
/// ephemeral ports are drawn strictly below 20000, so an
/// io::FlowLabeler port rule built from this function recovers every
/// label exactly — the self-hosting pcap fixture's ground-truth channel.
std::uint16_t ServicePortForLabel(std::int32_t label);

/// Generates a labelled dataset from the spec. Deterministic in the seed.
/// Every flow carries a synthetic canonical 5-tuple (IPv4, TCP or UDP,
/// service port = ServicePortForLabel(label)) and key =
/// dataplane::DigestTuple(tuple), so generated datasets survive a pcap
/// export -> import round trip bit-identically.
Dataset Generate(const DatasetSpec& spec);

/// Generates `num_flows` flows of a single (attack) profile, labelled
/// `label`. Used by the Figure 8 injection harness.
std::vector<Flow> GenerateFlows(const ClassProfile& profile,
                                std::size_t num_flows, std::int32_t label,
                                std::size_t min_packets,
                                std::size_t max_packets, std::uint64_t seed);

// ---- calibrated dataset specs (paper §7.1) ---------------------------

DatasetSpec PeerRushSpec(std::size_t flows_per_class = 300,
                         std::uint64_t seed = 1001);
DatasetSpec CiciotSpec(std::size_t flows_per_class = 300,
                       std::uint64_t seed = 2002);
DatasetSpec IscxVpnSpec(std::size_t flows_per_class = 200,
                        std::uint64_t seed = 3003);

/// All six attack profiles of §7.4 (five USTC-TFC2016 malware families plus
/// the Kitsune SSDP reflection flood), in Figure 8's legend order:
/// Htbot, Flood, Cridex, Virut, Neris, Geodo.
std::vector<ClassProfile> AttackProfiles();

}  // namespace pegasus::traffic
