// Streaming feature extraction — the per-packet counterpart of
// traffic/features.hpp (paper §7.3's deployment story: the switch classifies
// *live* flows, so every feature the offline extractors compute over a whole
// Flow must be maintainable one packet at a time in fixed per-flow state).
//
// OnlineFlowState is that state, sized exactly like the paper's per-flow
// registers: running min/max of quantized length and IPD, an 8-slot ring of
// stored fuzzy indexes (the 8-bit quantized (len, IPD) summaries sequence
// models match on), and optionally the raw-byte window CNN-L consumes. It is
// a flat aggregate — no heap, memcpy-able — so a preallocated
// runtime::FlowTable can hold millions of them.
//
// Bit-exactness contract: feeding a flow's packets through
// OnlineFeatureExtractor::Update and emitting at packet i produces exactly
// the sample the offline ExtractStatFeatures / ExtractSeqFeatures /
// ExtractRawBytes would emit for window position i. This is by construction:
// the offline extractors in features.cpp ARE wrappers over this class.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "traffic/features.hpp"
#include "traffic/packet.hpp"

namespace pegasus::traffic {

/// Fixed-size per-flow feature state for the stat and seq families.
/// A fresh flow is a *default-constructed* state — the min fields start at
/// their 255 sentinels, so zero-filled memory is NOT a valid fresh state.
struct OnlineFlowState {
  /// Absolute arrival time of the newest packet (trace clock).
  std::uint64_t last_ts_us = 0;
  /// Packets seen so far on this flow.
  std::uint32_t packets = 0;
  // Running statistics over quantized values (stat-family features 0..3).
  std::uint8_t min_len = 255;
  std::uint8_t max_len = 0;
  std::uint8_t min_ipd = 255;
  std::uint8_t max_ipd = 0;
  /// Stored fuzzy indexes: the last kWindow packets' quantized (len, IPD),
  /// newest at slot (packets - 1) % kWindow.
  std::array<std::uint8_t, kWindow> fuzzy_len{};
  std::array<std::uint8_t, kWindow> fuzzy_ipd{};

  /// True once enough packets arrived to emit any feature family.
  bool WindowFull() const { return packets >= kWindow; }
};

/// Per-flow state for the raw family: the 8x60-byte payload window on top
/// of the base state. Kept as a separate type so stat/seq flow tables do
/// not carry (or reset, on every insert/eviction) the 480-byte ring.
struct OnlineFlowStateRaw {
  OnlineFlowState base;
  /// Raw-byte window, same ring position convention as the fuzzy rings.
  std::array<std::array<std::uint8_t, kRawBytesPerPacket>, kWindow> raw{};

  bool WindowFull() const { return base.WindowFull(); }
};

/// Updates per-flow state one packet at a time and renders the three
/// feature families out of it. Stateless; safe to share across flows (the
/// per-flow state travels in OnlineFlowState[Raw]).
class OnlineFeatureExtractor {
 public:
  /// Feeds one packet arriving at absolute time `ts_us`. The IPD is
  /// `ts_us - last_ts_us` (0 for the flow's first packet, and clamped to 0
  /// for non-monotonic timestamps — real captures reorder), so both
  /// flow-relative clocks (offline extraction) and a shared trace clock
  /// (merged streams) produce identical quantized features.
  void Update(OnlineFlowState& s, const Packet& pkt,
              std::uint64_t ts_us) const;
  /// Raw-family update: base state plus the payload ring.
  void Update(OnlineFlowStateRaw& s, const Packet& pkt,
              std::uint64_t ts_us) const;

  // Feature emitters. All require s.WindowFull() (std::logic_error
  // otherwise) and write exactly kStatDim / kSeqDim / kRawDim floats.
  void EmitStat(const OnlineFlowState& s, float* out) const;
  void EmitSeq(const OnlineFlowState& s, float* out) const;
  void EmitRaw(const OnlineFlowStateRaw& s, float* out) const;
};

// ---------------------------------------------------------------------------
// Trace merging: interleaving a dataset's flows into one packet stream.
// ---------------------------------------------------------------------------

/// One packet of a merged, time-ordered trace. Borrows the Packet from the
/// source flows — the trace must not outlive them.
struct TracePacket {
  /// Absolute trace time (flow start offset + the packet's flow-relative
  /// timestamp), strictly ordered within a flow.
  std::uint64_t ts_us = 0;
  /// Index of the flow in the list MergeTrace was given.
  std::uint32_t flow = 0;
  /// Packet index within that flow.
  std::uint32_t index = 0;
  dataplane::FlowKey key;
  std::int32_t label = 0;
  /// Telemetry enqueue stamp (truncated steady-clock ns, 0 = unsampled):
  /// set by a sampling producer right before the packet enters a shard
  /// ring, read by the consumer for ring-dwell / end-to-end latency. Sits
  /// in what was padding, so TracePacket stays 40 bytes and the MT ring
  /// item stays 2x64. Not part of the packet's identity — replay, pcap
  /// and merge leave it 0.
  std::uint32_t tele_stamp = 0;
  const Packet* packet = nullptr;
};

struct MergeOptions {
  /// Flow start offsets are drawn uniformly from [0, horizon_us]; 0 means
  /// "longest flow duration", which makes most flows overlap in time.
  std::uint64_t horizon_us = 0;
  std::uint64_t seed = 97;
};

/// Interleaves `flows` into a single time-ordered packet stream. Each flow
/// keeps its relative packet spacing and is shifted by a deterministic
/// per-flow start offset. Ties are broken by (flow, index), so the result
/// is a pure function of inputs.
std::vector<TracePacket> MergeTrace(std::span<const Flow* const> flows,
                                    const MergeOptions& opts = {});
std::vector<TracePacket> MergeTrace(const std::vector<Flow>& flows,
                                    const MergeOptions& opts = {});

}  // namespace pegasus::traffic
