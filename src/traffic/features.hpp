// Feature extraction — what the switch parser + per-flow registers can
// produce (paper §6.3).
//
// Three feature families, one per model group in Table 5:
//
//  * Statistical (128 b = 16 x 8 bit): running min/max of packet length and
//    IPD (the only flow-level statistics the paper deems fair to compute on
//    a switch: "we only use the maximum and minimum packet lengths and
//    inter-packet delays"), the current packet, and a short history —
//    consumed by Leo, N3IC and MLP-B.
//  * Sequence (128 b): the (length, IPD) pairs of the last 8 packets —
//    consumed by BoS, RNN-B, CNN-B and CNN-M.
//  * Raw bytes (3840 b): 60 payload bytes from each of the last 8 packets —
//    consumed by CNN-L.
//
// Lengths quantize to 8 bits via len/8 (caps at 1500/8 < 256); IPDs via a
// 12*log2(1+us) companding curve (monotone, saturating at 255 around 2.5 s —
// any larger gap, up to multi-day and overflow IPDs, pins to 255) — both
// implementable as switch range tables.
//
// These whole-dataset extractors are thin wrappers over the streaming
// per-packet path (traffic/stream.hpp): each flow is replayed through an
// OnlineFeatureExtractor and sampled at WalkFlow-selected positions, so
// offline and online features are bit-identical by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "traffic/packet.hpp"

namespace pegasus::traffic {

inline constexpr std::size_t kWindow = 8;
inline constexpr std::size_t kStatDim = 16;                      // 128 bits
inline constexpr std::size_t kSeqDim = kWindow * 2;              // 128 bits
inline constexpr std::size_t kRawDim = kWindow * kRawBytesPerPacket;  // 3840 b

/// 8-bit quantization of a packet length in bytes.
std::uint8_t QuantizeLen(std::uint16_t len);

/// 8-bit companded quantization of an inter-packet delay in microseconds.
std::uint8_t QuantizeIpd(std::uint64_t ipd_us);

/// One labelled sample: `x` holds quantized features as floats in [0,255].
struct SampleSet {
  std::vector<float> x;  // row-major [num x dim]
  std::vector<std::int32_t> labels;
  std::vector<std::size_t> flow_index;  // originating flow per sample
  std::size_t dim = 0;

  std::size_t size() const { return labels.size(); }
};

struct ExtractOptions {
  /// Cap on samples emitted per flow (samples are windows ending at
  /// successive packets; capping keeps datasets flow-balanced).
  std::size_t max_samples_per_flow = 6;
};

/// Statistical features for every eligible packet of every flow.
SampleSet ExtractStatFeatures(const std::vector<Flow>& flows,
                              const ExtractOptions& opts = {});

/// (len, IPD) sequence windows.
SampleSet ExtractSeqFeatures(const std::vector<Flow>& flows,
                             const ExtractOptions& opts = {});

/// Raw-byte windows (CNN-L's input scale).
SampleSet ExtractRawBytes(const std::vector<Flow>& flows,
                          const ExtractOptions& opts = {});

}  // namespace pegasus::traffic
