// Traffic substrate: packets, flows and datasets.
//
// The paper evaluates on PeerRush, CICIOT2022 and ISCXVPN2016 pcaps; those
// traces are not redistributable here, so src/traffic generates synthetic
// flows with class-conditional packet-length / inter-packet-delay /
// payload-byte distributions (see DESIGN.md §2 for why this preserves the
// experiments' shape). Models consume only what these structures carry.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "dataplane/registers.hpp"

namespace pegasus::traffic {

/// Bytes of payload the CNN-L feature path reads per packet (§6.3: "extract
/// 60 raw bytes from each packet").
inline constexpr std::size_t kRawBytesPerPacket = 60;

struct Packet {
  /// Microseconds since flow start.
  std::uint64_t ts_us = 0;
  /// Wire length in bytes, [40, 1500].
  std::uint16_t len = 0;
  std::array<std::uint8_t, kRawBytesPerPacket> bytes{};
};

struct Flow {
  dataplane::FlowKey key;
  std::int32_t label = 0;
  std::vector<Packet> packets;
};

struct Dataset {
  std::string name;
  std::vector<std::string> class_names;
  std::vector<Flow> flows;

  std::size_t NumClasses() const { return class_names.size(); }
};

}  // namespace pegasus::traffic
