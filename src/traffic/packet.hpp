// Traffic substrate: packets, flows and datasets.
//
// The paper evaluates on PeerRush, CICIOT2022 and ISCXVPN2016 pcaps; those
// traces are not redistributable here, so src/traffic generates synthetic
// flows with class-conditional packet-length / inter-packet-delay /
// payload-byte distributions (see DESIGN.md §2 for why this preserves the
// experiments' shape). Models consume only what these structures carry.
//
// Real captures ARE ingestible: src/io/ reads classic pcap files, parses
// Ethernet/IPv4/IPv6/TCP/UDP wire formats into these structures
// (io/assemble.hpp -> Dataset) and replays them with trace timing into the
// serving runtime (io/replay.hpp); the synthetic generator exports the same
// format (io::WriteDatasetPcap), so fixtures are self-hosting.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "dataplane/flow_key.hpp"
#include "dataplane/registers.hpp"

namespace pegasus::traffic {

/// Bytes of payload the CNN-L feature path reads per packet (§6.3: "extract
/// 60 raw bytes from each packet").
inline constexpr std::size_t kRawBytesPerPacket = 60;

struct Packet {
  /// Microseconds since flow start.
  std::uint64_t ts_us = 0;
  /// Wire length in bytes, [40, 1500].
  std::uint16_t len = 0;
  std::array<std::uint8_t, kRawBytesPerPacket> bytes{};
};

struct Flow {
  /// Digest of `tuple` (dataplane::DigestTuple) — the key every flow table,
  /// shard router and register array indexes on.
  dataplane::FlowKey key;
  /// Canonical bidirectional 5-tuple; what the pcap export path
  /// (io/assemble.hpp) serializes back onto the wire.
  dataplane::FiveTuple tuple;
  std::int32_t label = 0;
  std::vector<Packet> packets;
};

struct Dataset {
  std::string name;
  std::vector<std::string> class_names;
  std::vector<Flow> flows;

  std::size_t NumClasses() const { return class_names.size(); }
};

}  // namespace pegasus::traffic
