#include "traffic/features.hpp"

#include <algorithm>
#include <cmath>

namespace pegasus::traffic {

std::uint8_t QuantizeLen(std::uint16_t len) {
  return static_cast<std::uint8_t>(std::min(255u, len / 8u));
}

std::uint8_t QuantizeIpd(std::uint64_t ipd_us) {
  const double q = 12.0 * std::log2(1.0 + static_cast<double>(ipd_us));
  return static_cast<std::uint8_t>(
      std::clamp(std::lround(q), 0l, 255l));
}

namespace {

/// Shared per-flow window walker: calls `emit(i)` for each selected packet
/// index i >= kWindow-1, at most opts.max_samples_per_flow times, spread
/// evenly over the flow.
template <typename Emit>
void WalkFlow(const Flow& flow, const ExtractOptions& opts, Emit&& emit) {
  if (flow.packets.size() < kWindow) return;
  const std::size_t eligible = flow.packets.size() - (kWindow - 1);
  const std::size_t take = std::min(eligible, opts.max_samples_per_flow);
  // Evenly spaced indices over the eligible range.
  for (std::size_t k = 0; k < take; ++k) {
    const std::size_t i =
        (kWindow - 1) + k * eligible / take;
    emit(i);
  }
}

std::uint64_t IpdAt(const Flow& flow, std::size_t i) {
  return i == 0 ? 0
               : flow.packets[i].ts_us - flow.packets[i - 1].ts_us;
}

}  // namespace

SampleSet ExtractStatFeatures(const std::vector<Flow>& flows,
                              const ExtractOptions& opts) {
  SampleSet out;
  out.dim = kStatDim;
  for (std::size_t fi = 0; fi < flows.size(); ++fi) {
    const Flow& flow = flows[fi];
    WalkFlow(flow, opts, [&](std::size_t i) {
      // Running min/max over packets [0, i].
      std::uint8_t min_len = 255, max_len = 0, min_ipd = 255, max_ipd = 0;
      for (std::size_t j = 0; j <= i; ++j) {
        const std::uint8_t ql = QuantizeLen(flow.packets[j].len);
        min_len = std::min(min_len, ql);
        max_len = std::max(max_len, ql);
        if (j > 0) {
          const std::uint8_t qi = QuantizeIpd(IpdAt(flow, j));
          min_ipd = std::min(min_ipd, qi);
          max_ipd = std::max(max_ipd, qi);
        }
      }
      float feat[kStatDim];
      feat[0] = min_len;
      feat[1] = max_len;
      feat[2] = min_ipd;
      feat[3] = max_ipd;
      feat[4] = QuantizeLen(flow.packets[i].len);
      feat[5] = QuantizeIpd(IpdAt(flow, i));
      // Short history: previous 5 packets' (len, ipd).
      for (std::size_t h = 0; h < 5; ++h) {
        const std::size_t j = i - 1 - h;
        feat[6 + 2 * h] = QuantizeLen(flow.packets[j].len);
        feat[7 + 2 * h] = QuantizeIpd(IpdAt(flow, j));
      }
      out.x.insert(out.x.end(), feat, feat + kStatDim);
      out.labels.push_back(flow.label);
      out.flow_index.push_back(fi);
    });
  }
  return out;
}

SampleSet ExtractSeqFeatures(const std::vector<Flow>& flows,
                             const ExtractOptions& opts) {
  SampleSet out;
  out.dim = kSeqDim;
  for (std::size_t fi = 0; fi < flows.size(); ++fi) {
    const Flow& flow = flows[fi];
    WalkFlow(flow, opts, [&](std::size_t i) {
      for (std::size_t w = 0; w < kWindow; ++w) {
        const std::size_t j = i - (kWindow - 1) + w;
        out.x.push_back(QuantizeLen(flow.packets[j].len));
        out.x.push_back(QuantizeIpd(IpdAt(flow, j)));
      }
      out.labels.push_back(flow.label);
      out.flow_index.push_back(fi);
    });
  }
  return out;
}

SampleSet ExtractRawBytes(const std::vector<Flow>& flows,
                          const ExtractOptions& opts) {
  SampleSet out;
  out.dim = kRawDim;
  for (std::size_t fi = 0; fi < flows.size(); ++fi) {
    const Flow& flow = flows[fi];
    WalkFlow(flow, opts, [&](std::size_t i) {
      for (std::size_t w = 0; w < kWindow; ++w) {
        const std::size_t j = i - (kWindow - 1) + w;
        for (std::uint8_t b : flow.packets[j].bytes) {
          out.x.push_back(b);
        }
      }
      out.labels.push_back(flow.label);
      out.flow_index.push_back(fi);
    });
  }
  return out;
}

}  // namespace pegasus::traffic
