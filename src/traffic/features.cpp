#include "traffic/features.hpp"

#include <algorithm>
#include <cmath>

#include "traffic/stream.hpp"

namespace pegasus::traffic {

std::uint8_t QuantizeLen(std::uint16_t len) {
  return static_cast<std::uint8_t>(std::min(255u, len / 8u));
}

std::uint8_t QuantizeIpd(std::uint64_t ipd_us) {
  const double q = 12.0 * std::log2(1.0 + static_cast<double>(ipd_us));
  return static_cast<std::uint8_t>(
      std::clamp(std::lround(q), 0l, 255l));
}

namespace {

/// Shared per-flow window walker: calls `emit(i)` for each selected packet
/// index i >= kWindow-1, at most opts.max_samples_per_flow times, spread
/// evenly over the flow.
template <typename Emit>
void WalkFlow(const Flow& flow, const ExtractOptions& opts, Emit&& emit) {
  if (flow.packets.size() < kWindow) return;
  const std::size_t eligible = flow.packets.size() - (kWindow - 1);
  const std::size_t take = std::min(eligible, opts.max_samples_per_flow);
  // Evenly spaced indices over the eligible range.
  for (std::size_t k = 0; k < take; ++k) {
    const std::size_t i =
        (kWindow - 1) + k * eligible / take;
    emit(i);
  }
}

/// Replays `flow` through the online extractor one packet at a time and
/// calls `emit(state)` at every WalkFlow-selected window position. This is
/// the whole offline implementation: the per-packet streaming path in
/// traffic/stream.hpp is the single source of feature semantics, so online
/// and offline features are bit-identical by construction. `State` is
/// OnlineFlowState (stat/seq) or OnlineFlowStateRaw (raw bytes).
template <typename State, typename Emit>
void ReplayFlow(const Flow& flow, const ExtractOptions& opts, Emit&& emit) {
  std::vector<std::size_t> targets;
  WalkFlow(flow, opts, [&](std::size_t i) { targets.push_back(i); });
  if (targets.empty()) return;
  const OnlineFeatureExtractor extractor;
  State state;
  std::size_t next = 0;
  for (std::size_t i = 0;
       i < flow.packets.size() && next < targets.size(); ++i) {
    extractor.Update(state, flow.packets[i], flow.packets[i].ts_us);
    if (i == targets[next]) {
      emit(extractor, state);
      ++next;
    }
  }
}

}  // namespace

SampleSet ExtractStatFeatures(const std::vector<Flow>& flows,
                              const ExtractOptions& opts) {
  SampleSet out;
  out.dim = kStatDim;
  for (std::size_t fi = 0; fi < flows.size(); ++fi) {
    const Flow& flow = flows[fi];
    ReplayFlow<OnlineFlowState>(
        flow, opts,
        [&](const OnlineFeatureExtractor& ex, const OnlineFlowState& st) {
          float feat[kStatDim];
          ex.EmitStat(st, feat);
          out.x.insert(out.x.end(), feat, feat + kStatDim);
          out.labels.push_back(flow.label);
          out.flow_index.push_back(fi);
        });
  }
  return out;
}

SampleSet ExtractSeqFeatures(const std::vector<Flow>& flows,
                             const ExtractOptions& opts) {
  SampleSet out;
  out.dim = kSeqDim;
  for (std::size_t fi = 0; fi < flows.size(); ++fi) {
    const Flow& flow = flows[fi];
    ReplayFlow<OnlineFlowState>(
        flow, opts,
        [&](const OnlineFeatureExtractor& ex, const OnlineFlowState& st) {
          float feat[kSeqDim];
          ex.EmitSeq(st, feat);
          out.x.insert(out.x.end(), feat, feat + kSeqDim);
          out.labels.push_back(flow.label);
          out.flow_index.push_back(fi);
        });
  }
  return out;
}

SampleSet ExtractRawBytes(const std::vector<Flow>& flows,
                          const ExtractOptions& opts) {
  SampleSet out;
  out.dim = kRawDim;
  std::vector<float> feat(kRawDim);
  for (std::size_t fi = 0; fi < flows.size(); ++fi) {
    const Flow& flow = flows[fi];
    ReplayFlow<OnlineFlowStateRaw>(
        flow, opts,
        [&](const OnlineFeatureExtractor& ex, const OnlineFlowStateRaw& st) {
          ex.EmitRaw(st, feat.data());
          out.x.insert(out.x.end(), feat.begin(), feat.end());
          out.labels.push_back(flow.label);
          out.flow_index.push_back(fi);
        });
  }
  return out;
}

}  // namespace pegasus::traffic
