#include "eval/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <map>

namespace pegasus::eval {

FeatureSplit SplitSamples(traffic::SampleSet all,
                          const std::vector<int>& flow_split) {
  FeatureSplit out;
  out.train.dim = out.val.dim = out.test.dim = all.dim;

  // Size each destination exactly before copying a single row: the rows
  // land in place with no geometric reallocation overshoot, and `all`
  // (moved into this call) is freed on return.
  std::size_t counts[3] = {0, 0, 0};
  for (std::size_t i = 0; i < all.size(); ++i) {
    const int split = flow_split.at(all.flow_index[i]);
    ++counts[split == 0 ? 0 : (split == 1 ? 1 : 2)];
  }
  traffic::SampleSet* dsts[3] = {&out.train, &out.val, &out.test};
  for (int s = 0; s < 3; ++s) {
    dsts[s]->x.reserve(counts[s] * all.dim);
    dsts[s]->labels.reserve(counts[s]);
    dsts[s]->flow_index.reserve(counts[s]);
  }

  for (std::size_t i = 0; i < all.size(); ++i) {
    const int split = flow_split.at(all.flow_index[i]);
    traffic::SampleSet* dst = dsts[split == 0 ? 0 : (split == 1 ? 1 : 2)];
    const auto begin =
        all.x.begin() + static_cast<std::ptrdiff_t>(i * all.dim);
    dst->x.insert(dst->x.end(), begin,
                  begin + static_cast<std::ptrdiff_t>(all.dim));
    dst->labels.push_back(all.labels[i]);
    dst->flow_index.push_back(all.flow_index[i]);
  }
  return out;
}

PreparedDataset Prepare(const traffic::DatasetSpec& spec, bool with_raw_bytes,
                        std::uint64_t split_seed) {
  PreparedDataset out;
  out.dataset = traffic::Generate(spec);
  out.name = out.dataset.name;
  out.num_classes = out.dataset.NumClasses();

  std::vector<std::int32_t> flow_labels;
  flow_labels.reserve(out.dataset.flows.size());
  for (const auto& f : out.dataset.flows) flow_labels.push_back(f.label);
  out.flow_split = SplitFlows(flow_labels, 0.75, 0.10, split_seed);

  // One family at a time: extract, split (consuming the extraction), move
  // on — peak memory never holds more than one whole family twice.
  out.stat = SplitSamples(traffic::ExtractStatFeatures(out.dataset.flows),
                          out.flow_split);
  out.seq = SplitSamples(traffic::ExtractSeqFeatures(out.dataset.flows),
                         out.flow_split);
  if (with_raw_bytes) {
    out.raw = SplitSamples(traffic::ExtractRawBytes(out.dataset.flows),
                           out.flow_split);
  }
  return out;
}

std::vector<std::int32_t> PredictClassesLowered(
    runtime::InferenceEngine& engine, const traffic::SampleSet& set) {
  const std::size_t n = set.size();
  const std::size_t out_dim = engine.output_dim();
  std::vector<std::int32_t> predictions(n);
  std::vector<float> logits(engine.batch_capacity() * out_dim);
  std::size_t done = 0;
  while (done < n) {
    const std::size_t chunk = std::min(n - done, engine.batch_capacity());
    engine.Infer(
        std::span<const float>(set.x.data() + done * set.dim,
                               chunk * set.dim),
        chunk, std::span<float>(logits.data(), chunk * out_dim));
    for (std::size_t i = 0; i < chunk; ++i) {
      const float* row = logits.data() + i * out_dim;
      std::size_t best = 0;
      for (std::size_t d = 1; d < out_dim; ++d) {
        if (row[d] > row[best]) best = d;
      }
      predictions[done + i] = static_cast<std::int32_t>(best);
    }
    done += chunk;
  }
  return predictions;
}

namespace {

/// Shared tail of the ServeTrace variants: stats snapshot, wall clock and
/// throughput over the packets this run actually pushed.
void FinishRun(StreamRun& run, runtime::StreamServer& server,
               std::uint64_t packets_before,
               std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  run.stats = server.Stats();
  run.telemetry = server.TelemetrySnapshot();
  run.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  const std::uint64_t pushed = run.stats.packets - packets_before;
  run.packets_per_sec =
      run.wall_ms > 0.0
          ? static_cast<double>(pushed) / (run.wall_ms / 1000.0)
          : 0.0;
}

}  // namespace

std::vector<traffic::TracePacket> TestTrace(const PreparedDataset& prep,
                                            std::uint64_t seed) {
  std::vector<const traffic::Flow*> test_flows;
  for (std::size_t fi = 0; fi < prep.dataset.flows.size(); ++fi) {
    if (prep.flow_split[fi] == 2) {
      test_flows.push_back(&prep.dataset.flows[fi]);
    }
  }
  traffic::MergeOptions opts;
  opts.seed = seed;
  return traffic::MergeTrace(test_flows, opts);
}

StreamRun ServeTrace(runtime::StreamServer& server,
                     std::span<const traffic::TracePacket> trace) {
  // Serve(span) pre-reserves per-shard decision space, so go through it
  // rather than a bare SpanPacketSource.
  StreamRun run;
  const std::uint64_t packets_before = server.Stats().packets;
  const auto t0 = std::chrono::steady_clock::now();
  run.decisions = server.Serve(trace);
  const auto t1 = std::chrono::steady_clock::now();
  FinishRun(run, server, packets_before, t0, t1);
  return run;
}

StreamRun ServeTrace(runtime::StreamServer& server,
                     runtime::PacketSource& source) {
  StreamRun run;
  const std::uint64_t packets_before = server.Stats().packets;
  const auto t0 = std::chrono::steady_clock::now();
  run.decisions = server.Serve(source);
  const auto t1 = std::chrono::steady_clock::now();
  FinishRun(run, server, packets_before, t0, t1);
  return run;
}

StreamRun ServeChurn(runtime::StreamServer& server,
                     traffic::ChurnGenerator& gen) {
  runtime::GeneratorPacketSource<traffic::ChurnGenerator> source(gen);
  return ServeTrace(server, source);
}

StreamRun ServeTracePartitioned(
    runtime::StreamServer& server,
    std::span<const traffic::TracePacket> trace) {
  runtime::DigestPartitionedSource source(
      trace, server.options().num_ingest,
      [&server](std::uint64_t digest) {
        return server.IngestPartitionOf(digest);
      });
  StreamRun run;
  const std::uint64_t packets_before = server.Stats().packets;
  const auto t0 = std::chrono::steady_clock::now();
  run.decisions = server.Serve(source);
  const auto t1 = std::chrono::steady_clock::now();
  FinishRun(run, server, packets_before, t0, t1);
  return run;
}

StreamRun ServeTraceWithSwap(
    runtime::StreamServer& server,
    std::span<const traffic::TracePacket> trace, std::size_t swap_at,
    std::shared_ptr<const runtime::LoweredModel> model,
    std::uint64_t version) {
  swap_at = std::min(swap_at, trace.size());
  StreamRun run;
  const bool mt = server.options().multithreaded;
  const std::uint64_t packets_before = server.Stats().packets;
  const auto t0 = std::chrono::steady_clock::now();
  if (mt) server.Start();
  for (std::size_t i = 0; i < swap_at; ++i) server.Push(trace[i]);
  server.SwapModel(std::move(model), version);
  for (std::size_t i = swap_at; i < trace.size(); ++i) server.Push(trace[i]);
  if (mt) {
    server.Stop();
  } else {
    server.Flush();
  }
  const auto t1 = std::chrono::steady_clock::now();
  run.decisions = server.TakeDecisions();
  FinishRun(run, server, packets_before, t0, t1);
  return run;
}

StreamRun ServeTraceWithDeltaSwap(
    runtime::StreamServer& server,
    std::span<const traffic::TracePacket> trace, std::size_t swap_at,
    std::span<const dataplane::TablePatch> patches, std::uint64_t version) {
  swap_at = std::min(swap_at, trace.size());
  StreamRun run;
  const bool mt = server.options().multithreaded;
  const std::uint64_t packets_before = server.Stats().packets;
  const auto t0 = std::chrono::steady_clock::now();
  if (mt) server.Start();
  for (std::size_t i = 0; i < swap_at; ++i) server.Push(trace[i]);
  server.SwapModelDelta(patches, version);
  for (std::size_t i = swap_at; i < trace.size(); ++i) server.Push(trace[i]);
  if (mt) {
    server.Stop();
  } else {
    server.Flush();
  }
  const auto t1 = std::chrono::steady_clock::now();
  run.decisions = server.TakeDecisions();
  FinishRun(run, server, packets_before, t0, t1);
  return run;
}

ClassificationReport EvaluateDecisions(
    const std::vector<runtime::StreamDecision>& decisions,
    std::size_t num_classes) {
  std::vector<std::int32_t> truth;
  std::vector<std::int32_t> predicted;
  truth.reserve(decisions.size());
  predicted.reserve(decisions.size());
  for (const auto& d : decisions) {
    truth.push_back(d.label);
    predicted.push_back(d.predicted);
  }
  return Evaluate(truth, predicted, num_classes);
}

DecisionReport EvaluateDecisionsDetailed(
    const std::vector<runtime::StreamDecision>& decisions,
    std::size_t num_classes) {
  DecisionReport report;
  report.overall = EvaluateDecisions(decisions, num_classes);
  // Group by serving version. Decision streams hold a handful of versions
  // (one per swap), so a linear scan into a small map-by-vector is fine.
  std::map<std::uint64_t, std::vector<std::size_t>> by_version;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    by_version[decisions[i].version].push_back(i);
  }
  report.versions.reserve(by_version.size());
  std::vector<std::uint32_t> lats;
  for (const auto& [version, idx] : by_version) {
    VersionWindowReport vw;
    vw.version = version;
    vw.decisions = idx.size();
    lats.clear();
    double lat_sum = 0.0;
    for (const std::size_t i : idx) {
      const auto& d = decisions[i];
      if (d.predicted == d.label) ++vw.correct;
      if (d.latency_ns != 0) {
        lats.push_back(d.latency_ns);
        lat_sum += static_cast<double>(d.latency_ns);
      }
    }
    vw.accuracy = vw.decisions == 0
                      ? 0.0
                      : static_cast<double>(vw.correct) /
                            static_cast<double>(vw.decisions);
    vw.sampled = lats.size();
    if (!lats.empty()) {
      // Exact quantiles (nth_element) — the sampled subset is small by
      // construction (1-in-N), so no histogram approximation needed here.
      const auto nth = [&lats](double q) {
        std::size_t k = static_cast<std::size_t>(
            q * static_cast<double>(lats.size() - 1));
        std::nth_element(lats.begin(), lats.begin() + k, lats.end());
        return static_cast<double>(lats[k]);
      };
      vw.latency_p50_ns = nth(0.50);
      vw.latency_p99_ns = nth(0.99);
      vw.latency_mean_ns = lat_sum / static_cast<double>(lats.size());
    }
    report.versions.push_back(vw);
  }
  return report;
}

}  // namespace pegasus::eval
