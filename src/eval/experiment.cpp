#include "eval/experiment.hpp"

#include <algorithm>

namespace pegasus::eval {

FeatureSplit SplitSamples(const traffic::SampleSet& all,
                          const std::vector<int>& flow_split) {
  FeatureSplit out;
  out.train.dim = out.val.dim = out.test.dim = all.dim;
  for (std::size_t i = 0; i < all.size(); ++i) {
    traffic::SampleSet* dst = nullptr;
    switch (flow_split.at(all.flow_index[i])) {
      case 0:
        dst = &out.train;
        break;
      case 1:
        dst = &out.val;
        break;
      default:
        dst = &out.test;
        break;
    }
    dst->x.insert(dst->x.end(), all.x.begin() + static_cast<std::ptrdiff_t>(
                                                    i * all.dim),
                  all.x.begin() + static_cast<std::ptrdiff_t>((i + 1) *
                                                              all.dim));
    dst->labels.push_back(all.labels[i]);
    dst->flow_index.push_back(all.flow_index[i]);
  }
  return out;
}

PreparedDataset Prepare(const traffic::DatasetSpec& spec, bool with_raw_bytes,
                        std::uint64_t split_seed) {
  PreparedDataset out;
  out.dataset = traffic::Generate(spec);
  out.name = out.dataset.name;
  out.num_classes = out.dataset.NumClasses();

  std::vector<std::int32_t> flow_labels;
  flow_labels.reserve(out.dataset.flows.size());
  for (const auto& f : out.dataset.flows) flow_labels.push_back(f.label);
  out.flow_split = SplitFlows(flow_labels, 0.75, 0.10, split_seed);

  out.stat = SplitSamples(traffic::ExtractStatFeatures(out.dataset.flows),
                          out.flow_split);
  out.seq = SplitSamples(traffic::ExtractSeqFeatures(out.dataset.flows),
                         out.flow_split);
  if (with_raw_bytes) {
    out.raw = SplitSamples(traffic::ExtractRawBytes(out.dataset.flows),
                           out.flow_split);
  }
  return out;
}

std::vector<std::int32_t> PredictClassesLowered(
    runtime::InferenceEngine& engine, const traffic::SampleSet& set) {
  const std::size_t n = set.size();
  const std::size_t out_dim = engine.output_dim();
  std::vector<std::int32_t> predictions(n);
  std::vector<float> logits(engine.batch_capacity() * out_dim);
  std::size_t done = 0;
  while (done < n) {
    const std::size_t chunk = std::min(n - done, engine.batch_capacity());
    engine.Infer(
        std::span<const float>(set.x.data() + done * set.dim,
                               chunk * set.dim),
        chunk, std::span<float>(logits.data(), chunk * out_dim));
    for (std::size_t i = 0; i < chunk; ++i) {
      const float* row = logits.data() + i * out_dim;
      std::size_t best = 0;
      for (std::size_t d = 1; d < out_dim; ++d) {
        if (row[d] > row[best]) best = d;
      }
      predictions[done + i] = static_cast<std::int32_t>(best);
    }
    done += chunk;
  }
  return predictions;
}

}  // namespace pegasus::eval
