#include "eval/experiment.hpp"

namespace pegasus::eval {

FeatureSplit SplitSamples(const traffic::SampleSet& all,
                          const std::vector<int>& flow_split) {
  FeatureSplit out;
  out.train.dim = out.val.dim = out.test.dim = all.dim;
  for (std::size_t i = 0; i < all.size(); ++i) {
    traffic::SampleSet* dst = nullptr;
    switch (flow_split.at(all.flow_index[i])) {
      case 0:
        dst = &out.train;
        break;
      case 1:
        dst = &out.val;
        break;
      default:
        dst = &out.test;
        break;
    }
    dst->x.insert(dst->x.end(), all.x.begin() + static_cast<std::ptrdiff_t>(
                                                    i * all.dim),
                  all.x.begin() + static_cast<std::ptrdiff_t>((i + 1) *
                                                              all.dim));
    dst->labels.push_back(all.labels[i]);
    dst->flow_index.push_back(all.flow_index[i]);
  }
  return out;
}

PreparedDataset Prepare(const traffic::DatasetSpec& spec, bool with_raw_bytes,
                        std::uint64_t split_seed) {
  PreparedDataset out;
  out.dataset = traffic::Generate(spec);
  out.name = out.dataset.name;
  out.num_classes = out.dataset.NumClasses();

  std::vector<std::int32_t> flow_labels;
  flow_labels.reserve(out.dataset.flows.size());
  for (const auto& f : out.dataset.flows) flow_labels.push_back(f.label);
  out.flow_split = SplitFlows(flow_labels, 0.75, 0.10, split_seed);

  out.stat = SplitSamples(traffic::ExtractStatFeatures(out.dataset.flows),
                          out.flow_split);
  out.seq = SplitSamples(traffic::ExtractSeqFeatures(out.dataset.flows),
                         out.flow_split);
  if (with_raw_bytes) {
    out.raw = SplitSamples(traffic::ExtractRawBytes(out.dataset.flows),
                           out.flow_split);
  }
  return out;
}

}  // namespace pegasus::eval
