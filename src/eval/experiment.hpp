// Shared experiment plumbing for the benchmark harness: splitting a
// synthetic dataset by flows, extracting each feature family once, and
// carrying the train/val/test sample sets the Table 5 / Figures 7-9
// drivers all consume — plus the streaming entry points that replay the
// test split through a runtime::StreamServer (the serving-path counterpart
// of offline batch prediction).
#pragma once

#include <cstdint>
#include <string>

#include "eval/metrics.hpp"
#include "runtime/inference_engine.hpp"
#include "runtime/stream_server.hpp"
#include "traffic/features.hpp"
#include "traffic/stream.hpp"
#include "traffic/synthetic.hpp"

namespace pegasus::eval {

/// One feature family, split by flow into train/val/test.
struct FeatureSplit {
  traffic::SampleSet train;
  traffic::SampleSet val;
  traffic::SampleSet test;
};

/// A fully prepared dataset: the flows plus all three feature families.
struct PreparedDataset {
  std::string name;
  std::size_t num_classes = 0;
  traffic::Dataset dataset;
  std::vector<int> flow_split;  // 0 train / 1 val / 2 test per flow
  FeatureSplit stat;
  FeatureSplit seq;
  FeatureSplit raw;
};

/// Generates the dataset and extracts/splits every feature family
/// (75/10/15 by flow, stratified — paper §7.1). The flow split is computed
/// once and reused across all three families.
PreparedDataset Prepare(const traffic::DatasetSpec& spec,
                        bool with_raw_bytes = true,
                        std::uint64_t split_seed = 7);

/// Splits one extracted SampleSet according to a per-flow assignment.
/// Consumes `all` (pass the extractor result straight in): destinations are
/// reserved exactly and the source is freed on return, so peak memory stays
/// at ~2x one family instead of accumulating reallocation overshoot.
FeatureSplit SplitSamples(traffic::SampleSet all,
                          const std::vector<int>& flow_split);

/// Runs every sample of `set` through a lowered model with the batched
/// InferenceEngine (allocation-free inner loop) and returns the argmax
/// class per sample — the switch-simulator counterpart of
/// TrainedModel::PredictClassFuzzy for whole test splits, and the offline
/// reference the streaming parity tests compare against.
std::vector<std::int32_t> PredictClassesLowered(
    runtime::InferenceEngine& engine, const traffic::SampleSet& set);

// ---------------------------------------------------------------------------
// Streaming evaluation: the serving path.
// ---------------------------------------------------------------------------

/// Merges the test-split flows of `prep` into one time-ordered packet
/// stream (traffic::MergeTrace). TracePacket::flow indexes the test subset
/// in dataset order; packets borrow from prep.dataset (keep it alive).
std::vector<traffic::TracePacket> TestTrace(const PreparedDataset& prep,
                                            std::uint64_t seed = 97);

/// Replays `trace` through `server` (Start/Stop around the push loop in
/// multi-threaded mode) and reports wall time alongside the decisions.
struct StreamRun {
  std::vector<runtime::StreamDecision> decisions;
  runtime::StreamServerStats stats;
  /// Observability snapshot taken at run end (stage latency quantiles,
  /// ring HWMs, trace-ring occupancy). `telemetry.attached` is false when
  /// the server was built without telemetry — the fields are then zero.
  telemetry::TelemetrySnapshot telemetry;
  double wall_ms = 0.0;
  double packets_per_sec = 0.0;
};

StreamRun ServeTrace(runtime::StreamServer& server,
                     std::span<const traffic::TracePacket> trace);

/// Pull-based variant for imported captures / timed replay: drains a
/// runtime::PacketSource (e.g. io::PcapPacketSource, optionally wrapped in
/// an io::TraceReplayer for trace-paced delivery) through the server.
/// `packets_per_sec` counts the packets the source actually produced —
/// read the replayer's own stats for schedule-lag detail.
StreamRun ServeTrace(runtime::StreamServer& server,
                     runtime::PacketSource& source);

/// Multi-ingest variant: splits `trace` by flow digest into
/// server.options().num_ingest partitions (via server.IngestPartitionOf)
/// and drains them through Serve(PartitionedPacketSource&) — N ingest
/// threads, no shared dispatch point. The partition pre-pass is excluded
/// from the timed window. With shedding enabled, `packets_per_sec` counts
/// the packets actually served; read run.stats.shed for the drops.
StreamRun ServeTracePartitioned(
    runtime::StreamServer& server,
    std::span<const traffic::TracePacket> trace);

/// Flow-churn stress run: streams a traffic::ChurnGenerator through the
/// server via runtime::GeneratorPacketSource — packets are produced and
/// consumed on the fly, so a 1M-live-flow sweep never materializes its
/// trace. Generation rides the ingest thread and is included in the timed
/// window (it is a fraction of per-packet serving cost).
StreamRun ServeChurn(runtime::StreamServer& server,
                     traffic::ChurnGenerator& gen);

/// The retrain-and-push scenario: replays `trace`, issuing
/// server.SwapModel(model, version) after pushing the first `swap_at`
/// packets — every earlier packet is decided by the old version, every
/// later one by `model` (decisions carry the version that produced them).
/// Works in both server modes; `swap_at` is clamped to the trace length.
StreamRun ServeTraceWithSwap(
    runtime::StreamServer& server,
    std::span<const traffic::TracePacket> trace, std::size_t swap_at,
    std::shared_ptr<const runtime::LoweredModel> model,
    std::uint64_t version);

/// The O(delta) variant of ServeTraceWithSwap: issues
/// server.SwapModelDelta(patches, version) at the swap point instead of
/// publishing a freshly lowered artifact. With patches from
/// control::CollectPatches against the serving version, the decision
/// stream is identical to the full-swap run — only the swap cost differs.
StreamRun ServeTraceWithDeltaSwap(
    runtime::StreamServer& server,
    std::span<const traffic::TracePacket> trace, std::size_t swap_at,
    std::span<const dataplane::TablePatch> patches, std::uint64_t version);

/// Classification report over per-packet streaming decisions (labels and
/// predictions carried in each decision).
ClassificationReport EvaluateDecisions(
    const std::vector<runtime::StreamDecision>& decisions,
    std::size_t num_classes);

/// Per-model-version slice of a decision stream: accuracy plus the
/// end-to-end latency distribution of the sampled packets that version
/// served. This is what a drift monitor watches — decisions carry the
/// version that produced them and (when telemetry sampling is on) their
/// serving latency, so accuracy and latency can be correlated per
/// version window instead of averaged across a swap boundary.
struct VersionWindowReport {
  std::uint64_t version = 0;
  std::size_t decisions = 0;
  std::size_t correct = 0;
  double accuracy = 0.0;
  /// Decisions with a sampled end-to-end latency (latency_ns != 0).
  std::size_t sampled = 0;
  /// Exact quantiles over the sampled latencies (0 when sampled == 0).
  double latency_p50_ns = 0.0;
  double latency_p99_ns = 0.0;
  double latency_mean_ns = 0.0;
};

/// EvaluateDecisions plus the per-version breakdown, version-ascending.
struct DecisionReport {
  ClassificationReport overall;
  std::vector<VersionWindowReport> versions;
};

DecisionReport EvaluateDecisionsDetailed(
    const std::vector<runtime::StreamDecision>& decisions,
    std::size_t num_classes);

}  // namespace pegasus::eval
