// Shared experiment plumbing for the benchmark harness: splitting a
// synthetic dataset by flows, extracting each feature family once, and
// carrying the train/val/test sample sets the Table 5 / Figures 7-9
// drivers all consume.
#pragma once

#include <cstdint>
#include <string>

#include "eval/metrics.hpp"
#include "runtime/inference_engine.hpp"
#include "traffic/features.hpp"
#include "traffic/synthetic.hpp"

namespace pegasus::eval {

/// One feature family, split by flow into train/val/test.
struct FeatureSplit {
  traffic::SampleSet train;
  traffic::SampleSet val;
  traffic::SampleSet test;
};

/// A fully prepared dataset: the flows plus all three feature families.
struct PreparedDataset {
  std::string name;
  std::size_t num_classes = 0;
  traffic::Dataset dataset;
  std::vector<int> flow_split;  // 0 train / 1 val / 2 test per flow
  FeatureSplit stat;
  FeatureSplit seq;
  FeatureSplit raw;
};

/// Generates the dataset and extracts/splits every feature family
/// (75/10/15 by flow, stratified — paper §7.1).
PreparedDataset Prepare(const traffic::DatasetSpec& spec,
                        bool with_raw_bytes = true,
                        std::uint64_t split_seed = 7);

/// Splits one extracted SampleSet according to a per-flow assignment.
FeatureSplit SplitSamples(const traffic::SampleSet& all,
                          const std::vector<int>& flow_split);

/// Runs every sample of `set` through a lowered model with the batched
/// InferenceEngine (allocation-free inner loop) and returns the argmax
/// class per sample — the switch-simulator counterpart of
/// TrainedModel::PredictClassFuzzy for whole test splits.
std::vector<std::int32_t> PredictClassesLowered(
    runtime::InferenceEngine& engine, const traffic::SampleSet& set);

}  // namespace pegasus::eval
