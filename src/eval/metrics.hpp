// Evaluation metrics (paper §7.1): packet-level macro-accuracy (mean
// F1-score across classes), overall precision/recall, and ROC/AUC for the
// unsupervised detection experiment (§7.4).
#pragma once

#include <cstdint>
#include <vector>

namespace pegasus::eval {

struct ClassificationReport {
  /// Macro-averaged precision / recall / F1 — the PR / RC / F1 columns of
  /// Table 5.
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  /// Plain accuracy, for reference.
  double accuracy = 0.0;
  /// Per-class F1.
  std::vector<double> class_f1;
};

/// Computes the macro-averaged report. Classes absent from both truth and
/// prediction contribute zeros (they should not occur in our splits).
ClassificationReport Evaluate(const std::vector<std::int32_t>& truth,
                              const std::vector<std::int32_t>& predicted,
                              std::size_t num_classes);

struct RocPoint {
  double fpr = 0.0;
  double tpr = 0.0;
};

struct RocCurve {
  std::vector<RocPoint> points;
  double auc = 0.0;
};

/// ROC over anomaly scores: `scores[i]` with `is_attack[i]` ground truth;
/// higher score = more anomalous. AUC computed by the rank statistic
/// (equivalent to trapezoidal integration over all thresholds).
RocCurve ComputeRoc(const std::vector<float>& scores,
                    const std::vector<bool>& is_attack);

/// Train/validation/test split over *flows* (the paper splits by 5-tuple:
/// "we selected 75% of the flows from each class to train, 10% for
/// validation, and 15% for testing"). Returns per-flow assignment:
/// 0 = train, 1 = val, 2 = test. Stratified by label, deterministic.
std::vector<int> SplitFlows(const std::vector<std::int32_t>& flow_labels,
                            double train_frac, double val_frac,
                            std::uint64_t seed);

}  // namespace pegasus::eval
