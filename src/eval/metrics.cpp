#include "eval/metrics.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <stdexcept>

namespace pegasus::eval {

ClassificationReport Evaluate(const std::vector<std::int32_t>& truth,
                              const std::vector<std::int32_t>& predicted,
                              std::size_t num_classes) {
  if (truth.size() != predicted.size() || truth.empty()) {
    throw std::invalid_argument("Evaluate: size mismatch or empty");
  }
  std::vector<std::size_t> tp(num_classes, 0), fp(num_classes, 0),
      fn(num_classes, 0);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const auto t = static_cast<std::size_t>(truth[i]);
    const auto p = static_cast<std::size_t>(predicted[i]);
    if (t >= num_classes || p >= num_classes) {
      throw std::invalid_argument("Evaluate: label out of range");
    }
    if (t == p) {
      ++tp[t];
      ++correct;
    } else {
      ++fp[p];
      ++fn[t];
    }
  }
  ClassificationReport rep;
  rep.class_f1.resize(num_classes, 0.0);
  for (std::size_t c = 0; c < num_classes; ++c) {
    const double denom_p = static_cast<double>(tp[c] + fp[c]);
    const double denom_r = static_cast<double>(tp[c] + fn[c]);
    const double prec = denom_p > 0 ? tp[c] / denom_p : 0.0;
    const double rec = denom_r > 0 ? tp[c] / denom_r : 0.0;
    const double f1 = prec + rec > 0 ? 2 * prec * rec / (prec + rec) : 0.0;
    rep.precision += prec;
    rep.recall += rec;
    rep.f1 += f1;
    rep.class_f1[c] = f1;
  }
  const double nc = static_cast<double>(num_classes);
  rep.precision /= nc;
  rep.recall /= nc;
  rep.f1 /= nc;
  rep.accuracy = static_cast<double>(correct) / static_cast<double>(truth.size());
  return rep;
}

RocCurve ComputeRoc(const std::vector<float>& scores,
                    const std::vector<bool>& is_attack) {
  if (scores.size() != is_attack.size() || scores.empty()) {
    throw std::invalid_argument("ComputeRoc: size mismatch or empty");
  }
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  const std::size_t pos = static_cast<std::size_t>(
      std::count(is_attack.begin(), is_attack.end(), true));
  const std::size_t neg = scores.size() - pos;
  if (pos == 0 || neg == 0) {
    throw std::invalid_argument("ComputeRoc: need both classes");
  }
  RocCurve curve;
  curve.points.push_back({0.0, 0.0});
  std::size_t tp = 0, fp = 0;
  double auc = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    // Process ties together so the curve is threshold-consistent.
    const float s = scores[order[i]];
    std::size_t dtp = 0, dfp = 0;
    while (i < order.size() && scores[order[i]] == s) {
      if (is_attack[order[i]]) {
        ++dtp;
      } else {
        ++dfp;
      }
      ++i;
    }
    const double tpr0 = static_cast<double>(tp) / pos;
    const double fpr0 = static_cast<double>(fp) / neg;
    tp += dtp;
    fp += dfp;
    const double tpr1 = static_cast<double>(tp) / pos;
    const double fpr1 = static_cast<double>(fp) / neg;
    auc += (fpr1 - fpr0) * (tpr0 + tpr1) / 2.0;  // trapezoid
    curve.points.push_back({fpr1, tpr1});
  }
  curve.auc = auc;
  return curve;
}

std::vector<int> SplitFlows(const std::vector<std::int32_t>& flow_labels,
                            double train_frac, double val_frac,
                            std::uint64_t seed) {
  if (train_frac < 0 || val_frac < 0 || train_frac + val_frac > 1.0) {
    throw std::invalid_argument("SplitFlows: bad fractions");
  }
  // Stratify: shuffle indices within each class, then cut.
  std::int32_t max_label = 0;
  for (std::int32_t l : flow_labels) max_label = std::max(max_label, l);
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(max_label) + 1);
  for (std::size_t i = 0; i < flow_labels.size(); ++i) {
    by_class[static_cast<std::size_t>(flow_labels[i])].push_back(i);
  }
  std::vector<int> assignment(flow_labels.size(), 2);
  std::mt19937_64 rng(seed);
  for (auto& idx : by_class) {
    std::shuffle(idx.begin(), idx.end(), rng);
    const auto n = idx.size();
    const auto n_train = static_cast<std::size_t>(train_frac * n);
    const auto n_val = static_cast<std::size_t>(val_frac * n);
    for (std::size_t k = 0; k < n; ++k) {
      assignment[idx[k]] = k < n_train ? 0 : (k < n_train + n_val ? 1 : 2);
    }
  }
  return assignment;
}

}  // namespace pegasus::eval
