// Timed trace replay: feeding the StreamServer from captures.
//
// Two PacketSource implementations complete the pcap -> parse -> assemble
// -> serve pipeline's serving edge:
//
//  * PcapPacketSource streams a capture straight into TracePackets — pcap
//    record -> wire parse -> flow identity (first-seen flow numbering, the
//    same convention MergeTrace uses) — without materializing a Dataset, so
//    arbitrarily large captures replay in O(flows) memory.
//  * TraceReplayer wraps any PacketSource and paces delivery by the trace's
//    own timestamps: as-fast-as-possible, trace-paced (wall clock tracks
//    the capture clock), or speedup xN. Next() blocks until a packet is
//    due, so StreamServer::Serve(replayer) IS the timed replay loop; the
//    replayer records per-replay stats (wall time, rate, how far delivery
//    fell behind schedule).
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/assemble.hpp"
#include "io/pcap.hpp"
#include "io/wire.hpp"
#include "runtime/packet_source.hpp"

namespace pegasus::io {

/// Streams a pcap capture as TracePackets. Flow indexes are assigned in
/// first-seen order and labels via the FlowLabeler, so decisions produced
/// from a replayed capture line up with the Dataset an import of the same
/// file would produce. The source owns one packet buffer, reused per Next.
class PcapPacketSource final : public runtime::PacketSource {
 public:
  /// The stream must outlive the source. Throws on a bad header or a
  /// non-Ethernet linktype.
  explicit PcapPacketSource(std::istream& is, FlowLabeler labeler = {});
  /// Opens and owns the file stream.
  explicit PcapPacketSource(const std::string& path,
                            FlowLabeler labeler = {});

  bool Next(traffic::TracePacket& out) override;

  const WireParseStats& parse_stats() const { return parser_.stats(); }
  std::uint64_t flows_seen() const { return flows_.size(); }

 private:
  struct FlowEntry {
    std::uint32_t flow = 0;
    std::uint32_t next_index = 0;
    std::int32_t label = 0;
    std::uint64_t first_ts_us = 0;
  };

  std::unique_ptr<std::ifstream> owned_;
  PcapReader reader_;
  WireParser parser_;
  FlowLabeler labeler_;
  std::unordered_map<std::uint64_t, FlowEntry> flows_;
  PcapRecord rec_;  // reused per Next: record capacity survives packets
  traffic::Packet storage_;
};

/// Multi-ingest pcap replay (RSS-from-file): each partition owns an
/// independent decode pass over the SAME capture — reader, parser and flow
/// map per partition — and emits only the packets its partition function
/// claims. N ingest threads therefore pull concurrently with zero shared
/// state, at the cost of N parse passes (the standard software-RSS
/// trade when the capture has no per-flow index). Because every inner
/// source sees the whole file, first-seen flow numbering is identical
/// across partitions — decisions line up with an unpartitioned replay.
class PartitionedPcapSource final : public runtime::PartitionedPacketSource {
 public:
  /// `fn` maps a flow digest to its partition (build it from
  /// StreamServer::IngestPartitionOf); must be pure and thread-safe.
  PartitionedPcapSource(const std::string& path, std::size_t partitions,
                        runtime::DigestPartitionFn fn,
                        const FlowLabeler& labeler = {});

  std::size_t partitions() const override { return inner_.size(); }
  bool Next(std::size_t p, traffic::TracePacket& out) override;

 private:
  std::vector<std::unique_ptr<PcapPacketSource>> inner_;
  runtime::DigestPartitionFn fn_;
};

enum class ReplayClock {
  /// No pacing: deliver as fast as the consumer pulls.
  kAfap,
  /// Wall clock tracks the capture clock 1:1.
  kTracePaced,
  /// Capture clock divided by `speedup` (x8 replays an 8-second trace in
  /// about one second).
  kSpeedup,
};

const char* ReplayClockName(ReplayClock clock);

struct ReplayOptions {
  ReplayClock clock = ReplayClock::kAfap;
  /// Only read under kSpeedup; must be > 0.
  double speedup = 1.0;
};

struct ReplayStats {
  std::uint64_t packets = 0;
  std::uint64_t first_ts_us = 0;
  std::uint64_t last_ts_us = 0;
  /// Wall time from the first packet's delivery to the newest.
  double wall_ms = 0.0;
  /// Worst observed delivery lag behind the paced schedule, microseconds
  /// (0 under kAfap).
  std::uint64_t max_lag_us = 0;

  std::uint64_t TraceSpanUs() const { return last_ts_us - first_ts_us; }
  double PacketsPerSec() const {
    return wall_ms > 0.0 ? static_cast<double>(packets) / (wall_ms / 1000.0)
                         : 0.0;
  }
};

/// Pacing decorator over any PacketSource (which must outlive it).
class TraceReplayer final : public runtime::PacketSource {
 public:
  TraceReplayer(runtime::PacketSource& inner, ReplayOptions opts = {});

  /// Pulls the next packet from the inner source and blocks (sleep, then
  /// spin near the deadline) until the packet is due under the clock mode.
  bool Next(traffic::TracePacket& out) override;

  const ReplayStats& stats() const { return stats_; }

 private:
  runtime::PacketSource& inner_;
  ReplayOptions opts_;
  ReplayStats stats_;
  bool started_ = false;
  std::chrono::steady_clock::time_point wall_start_;
};

}  // namespace pegasus::io
