// Flow assembly: grouping parsed packets into traffic::Flows and emitting a
// standard traffic::Dataset, so every existing model / compiler / eval path
// works on imported captures unchanged.
//
// FlowAssembler keys on the canonical FlowKey digest (both directions of a
// conversation land in one flow), rebases each flow's timestamps to its
// first packet (traffic::Packet::ts_us is flow-relative), and labels flows
// through pluggable FlowLabeler rules — service-port map, subnet map, or a
// per-file default — the three ways real capture corpora carry ground
// truth (port conventions, attacker subnets, one-class-per-file pcaps).
//
// The module also owns the whole-dataset conveniences:
//   WriteDatasetPcap  — Dataset -> capture (io/wire.hpp BuildFrame per
//                       packet), either flow-sequential (order-preserving,
//                       the round-trip fixture format) or time-merged
//                       (realistic interleaving via traffic::MergeTrace);
//   ReadDatasetPcap   — capture -> Dataset (PcapReader + WireParser +
//                       FlowAssembler), with parse/assembly drop stats.
// A Dataset written flow-sequentially re-imports bit-identically
// (tests/test_io.cpp locks this).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/pcap.hpp"
#include "io/wire.hpp"
#include "traffic/packet.hpp"
#include "traffic/stream.hpp"

namespace pegasus::io {

/// Label assignment for assembled flows. Rules are consulted in order:
/// service-port map (either canonical port), subnet map (either endpoint),
/// then the default label.
class FlowLabeler {
 public:
  /// Flows with `port` as src or dst port get `label`.
  FlowLabeler& MapPort(std::uint16_t port, std::int32_t label);

  /// Flows with either endpoint inside the prefix get `label`. `prefix` is
  /// the address's leading bytes (4 for IPv4, up to 16 for IPv6);
  /// `prefix_bits` counts matched leading bits.
  FlowLabeler& MapSubnet(std::uint8_t version,
                         std::span<const std::uint8_t> prefix,
                         int prefix_bits, std::int32_t label);

  /// Per-file labeling: every unmatched flow gets `label`.
  FlowLabeler& Default(std::int32_t label);

  std::int32_t LabelFor(const dataplane::FiveTuple& tuple) const;

 private:
  struct Subnet {
    std::uint8_t version = 4;
    std::array<std::uint8_t, 16> prefix{};
    int bits = 0;
    std::int32_t label = 0;
  };
  std::unordered_map<std::uint16_t, std::int32_t> ports_;
  std::vector<Subnet> subnets_;
  std::int32_t default_label_ = 0;
};

/// Builds the port-map labeler matching the synthetic generator's
/// service-port encoding (traffic::ServicePortForLabel) for the given
/// labels — the self-hosting fixture's ground-truth channel.
FlowLabeler PortLabelerForLabels(std::span<const std::int32_t> labels);

struct AssembleStats {
  std::uint64_t packets = 0;
  std::uint64_t flows = 0;
  /// Packets whose capture time precedes their flow's first packet
  /// (reordered captures); their flow-relative timestamp clamps to 0.
  std::uint64_t reordered = 0;
};

class FlowAssembler {
 public:
  explicit FlowAssembler(FlowLabeler labeler = {})
      : labeler_(std::move(labeler)) {}

  /// Adds one parsed packet to its flow (creating the flow, labeled via the
  /// labeler, on first sight).
  void Add(const ParsedPacket& packet);

  /// Moves out the assembled dataset: flows in first-seen order, named and
  /// class-named by the caller (a capture file carries neither). The
  /// assembler is empty afterwards.
  traffic::Dataset Finish(std::string name,
                          std::vector<std::string> class_names);

  const AssembleStats& stats() const { return stats_; }

 private:
  FlowLabeler labeler_;
  std::unordered_map<std::uint64_t, std::size_t> index_;  // digest -> pos
  std::vector<traffic::Flow> flows_;
  std::vector<std::uint64_t> first_ts_us_;
  AssembleStats stats_;
};

// ---------------------------------------------------------------------------
// Whole-dataset capture I/O.
// ---------------------------------------------------------------------------

struct PcapExportOptions {
  PcapOptions pcap;
  /// false: flows written back-to-back in dataset order (each flow offset
  /// past the previous flow's end by `flow_gap_us`) — preserves flow order
  /// and exact per-flow timing across a round trip. true: packets
  /// interleaved in merged trace time (traffic::MergeTrace with `merge`) —
  /// the realistic-replay format.
  bool merged = false;
  traffic::MergeOptions merge;
  std::uint64_t flow_gap_us = 1000;
};

/// Writes every packet of `dataset` as an Ethernet frame (BuildFrame over
/// the flow's 5-tuple). Returns the number of records written.
std::uint64_t WriteDatasetPcap(std::ostream& os,
                               const traffic::Dataset& dataset,
                               const PcapExportOptions& opts = {});
std::uint64_t WriteDatasetPcap(const std::string& path,
                               const traffic::Dataset& dataset,
                               const PcapExportOptions& opts = {});

struct PcapImportOptions {
  FlowLabeler labeler;
  std::string name = "capture";
  std::vector<std::string> class_names;
};

struct PcapImportResult {
  traffic::Dataset dataset;
  WireParseStats parse;
  AssembleStats assemble;
  /// Total pcap records read (parse.frames of them offered to the parser).
  std::uint64_t records = 0;
};

/// Import options matching a capture exported from `dataset`
/// (WriteDatasetPcap): a port-rule labeler over the dataset's class labels
/// (traffic::ServicePortForLabel encoding) plus its name and class names —
/// the one-liner every self-hosting fixture consumer needs.
PcapImportOptions ImportOptionsFor(const traffic::Dataset& dataset);

/// Reads a capture end-to-end: pcap records -> wire parse -> flow assembly.
/// Throws std::runtime_error on a non-Ethernet linktype or a corrupt file.
PcapImportResult ReadDatasetPcap(std::istream& is,
                                 const PcapImportOptions& opts = {});
PcapImportResult ReadDatasetPcap(const std::string& path,
                                 const PcapImportOptions& opts = {});

}  // namespace pegasus::io
