#include "io/assemble.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <stdexcept>

#include "traffic/synthetic.hpp"

namespace pegasus::io {

// ---------------------------------------------------------------- labeler

FlowLabeler& FlowLabeler::MapPort(std::uint16_t port, std::int32_t label) {
  const auto [it, inserted] = ports_.emplace(port, label);
  if (!inserted && it->second != label) {
    throw std::invalid_argument("FlowLabeler: port " + std::to_string(port) +
                                " already mapped to a different label");
  }
  return *this;
}

FlowLabeler& FlowLabeler::MapSubnet(std::uint8_t version,
                                    std::span<const std::uint8_t> prefix,
                                    int prefix_bits, std::int32_t label) {
  const int max_bits = version == 6 ? 128 : 32;
  if (prefix_bits < 0 || prefix_bits > max_bits) {
    throw std::invalid_argument("FlowLabeler: bad prefix length");
  }
  if (static_cast<std::size_t>((prefix_bits + 7) / 8) > prefix.size()) {
    throw std::invalid_argument(
        "FlowLabeler: prefix bytes do not cover the prefix length");
  }
  Subnet s;
  s.version = version;
  s.bits = prefix_bits;
  s.label = label;
  std::copy(prefix.begin(),
            prefix.begin() + std::min<std::size_t>(prefix.size(), 16),
            s.prefix.begin());
  subnets_.push_back(s);
  return *this;
}

FlowLabeler& FlowLabeler::Default(std::int32_t label) {
  default_label_ = label;
  return *this;
}

namespace {

bool InSubnet(const std::array<std::uint8_t, 16>& addr,
              const std::array<std::uint8_t, 16>& prefix, int bits) {
  const int whole = bits / 8;
  if (!std::equal(addr.begin(), addr.begin() + whole, prefix.begin())) {
    return false;
  }
  const int rest = bits % 8;
  if (rest == 0) return true;
  const std::uint8_t mask =
      static_cast<std::uint8_t>(0xff << (8 - rest));
  return (addr[whole] & mask) == (prefix[whole] & mask);
}

}  // namespace

std::int32_t FlowLabeler::LabelFor(const dataplane::FiveTuple& tuple) const {
  if (!ports_.empty()) {
    if (const auto it = ports_.find(tuple.src_port); it != ports_.end()) {
      return it->second;
    }
    if (const auto it = ports_.find(tuple.dst_port); it != ports_.end()) {
      return it->second;
    }
  }
  for (const Subnet& s : subnets_) {
    if (s.version != tuple.version) continue;
    if (InSubnet(tuple.src, s.prefix, s.bits) ||
        InSubnet(tuple.dst, s.prefix, s.bits)) {
      return s.label;
    }
  }
  return default_label_;
}

FlowLabeler PortLabelerForLabels(std::span<const std::int32_t> labels) {
  FlowLabeler labeler;
  for (const std::int32_t label : labels) {
    labeler.MapPort(traffic::ServicePortForLabel(label), label);
  }
  return labeler;
}

// -------------------------------------------------------------- assembler

void FlowAssembler::Add(const ParsedPacket& packet) {
  const auto [it, inserted] =
      index_.emplace(packet.key.digest, flows_.size());
  if (inserted) {
    traffic::Flow flow;
    flow.key = packet.key;
    flow.tuple = packet.tuple;
    flow.label = labeler_.LabelFor(packet.tuple);
    flows_.push_back(std::move(flow));
    first_ts_us_.push_back(packet.ts_us);
    ++stats_.flows;
  }
  traffic::Flow& flow = flows_[it->second];
  const std::uint64_t start = first_ts_us_[it->second];
  traffic::Packet pkt;
  if (packet.ts_us < start) {
    // Reordered capture: the flow's clock cannot run backwards past its
    // first packet; clamp like OnlineFlowState clamps negative IPDs.
    ++stats_.reordered;
  } else {
    pkt.ts_us = packet.ts_us - start;
  }
  pkt.len = packet.wire_len;
  pkt.bytes = packet.payload;
  flow.packets.push_back(pkt);
  ++stats_.packets;
}

traffic::Dataset FlowAssembler::Finish(std::string name,
                                       std::vector<std::string> class_names) {
  traffic::Dataset ds;
  ds.name = std::move(name);
  ds.class_names = std::move(class_names);
  ds.flows = std::move(flows_);
  flows_.clear();
  first_ts_us_.clear();
  index_.clear();
  return ds;
}

// ----------------------------------------------------------------- export

std::uint64_t WriteDatasetPcap(std::ostream& os,
                               const traffic::Dataset& dataset,
                               const PcapExportOptions& opts) {
  PcapWriter writer(os, opts.pcap);
  const auto write_one = [&](const traffic::Flow& flow,
                             const traffic::Packet& pkt,
                             std::uint64_t ts_us) {
    const auto frame = BuildFrame(flow.tuple, pkt.bytes, pkt.len);
    // The frame always carries the 60-byte payload window; when the logical
    // packet is larger, the record is a snaplen-style truncated capture.
    const auto orig_len = static_cast<std::uint32_t>(std::max(
        frame.size(), static_cast<std::size_t>(14) + pkt.len));
    writer.Write(ts_us, frame, orig_len);
  };

  if (opts.merged) {
    for (const auto& tp : traffic::MergeTrace(dataset.flows, opts.merge)) {
      write_one(dataset.flows[tp.flow], *tp.packet, tp.ts_us);
    }
  } else {
    std::uint64_t base = 0;
    for (const auto& flow : dataset.flows) {
      for (const auto& pkt : flow.packets) {
        write_one(flow, pkt, base + pkt.ts_us);
      }
      if (!flow.packets.empty()) {
        base += flow.packets.back().ts_us + opts.flow_gap_us;
      }
    }
  }
  return writer.records();
}

std::uint64_t WriteDatasetPcap(const std::string& path,
                               const traffic::Dataset& dataset,
                               const PcapExportOptions& opts) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw std::runtime_error("WriteDatasetPcap: cannot open " + path);
  }
  return WriteDatasetPcap(os, dataset, opts);
}

// ----------------------------------------------------------------- import

PcapImportOptions ImportOptionsFor(const traffic::Dataset& dataset) {
  PcapImportOptions opts;
  // The labels the flows *actually* carry, not 0..NumClasses-1 — datasets
  // with injected attack flows label them negatively (distinct service
  // ports under ServicePortForLabel), and those must survive the round
  // trip too.
  std::set<std::int32_t> labels;
  for (std::size_t c = 0; c < dataset.NumClasses(); ++c) {
    labels.insert(static_cast<std::int32_t>(c));
  }
  for (const auto& flow : dataset.flows) labels.insert(flow.label);
  const std::vector<std::int32_t> all(labels.begin(), labels.end());
  opts.labeler = PortLabelerForLabels(all);
  opts.name = dataset.name;
  opts.class_names = dataset.class_names;
  return opts;
}

PcapImportResult ReadDatasetPcap(std::istream& is,
                                 const PcapImportOptions& opts) {
  PcapReader reader(is);
  RequireEthernet(reader, "ReadDatasetPcap");
  WireParser parser;
  FlowAssembler assembler(opts.labeler);
  PcapRecord rec;
  ParsedPacket packet;
  while (reader.Next(rec)) {
    if (parser.Parse(rec.data, rec.TsMicros(reader.nanos()), packet)) {
      assembler.Add(packet);
    }
  }
  PcapImportResult out;
  out.parse = parser.stats();
  out.assemble = assembler.stats();
  out.records = reader.records();
  out.dataset = assembler.Finish(opts.name, opts.class_names);
  return out;
}

PcapImportResult ReadDatasetPcap(const std::string& path,
                                 const PcapImportOptions& opts) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("ReadDatasetPcap: cannot open " + path);
  }
  return ReadDatasetPcap(is, opts);
}

}  // namespace pegasus::io
