#include "io/replay.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace pegasus::io {

PcapPacketSource::PcapPacketSource(std::istream& is, FlowLabeler labeler)
    : reader_(is), labeler_(std::move(labeler)) {
  RequireEthernet(reader_, "PcapPacketSource");
}

namespace {

std::unique_ptr<std::ifstream> OpenPcap(const std::string& path) {
  auto is = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*is) {
    throw std::runtime_error("PcapPacketSource: cannot open " + path);
  }
  return is;
}

}  // namespace

PcapPacketSource::PcapPacketSource(const std::string& path,
                                   FlowLabeler labeler)
    : owned_(OpenPcap(path)), reader_(*owned_), labeler_(std::move(labeler)) {
  RequireEthernet(reader_, "PcapPacketSource");
}

bool PcapPacketSource::Next(traffic::TracePacket& out) {
  // rec_'s buffer is a member so its capacity survives across packets —
  // the afap replay path pays no per-packet allocation.
  ParsedPacket packet;
  while (reader_.Next(rec_)) {
    if (!parser_.Parse(rec_.data, rec_.TsMicros(reader_.nanos()), packet)) {
      continue;  // counted drop; keep reading
    }
    auto [it, inserted] = flows_.emplace(packet.key.digest, FlowEntry{});
    FlowEntry& entry = it->second;
    if (inserted) {
      entry.flow = static_cast<std::uint32_t>(flows_.size() - 1);
      entry.label = labeler_.LabelFor(packet.tuple);
      entry.first_ts_us = packet.ts_us;
    }
    // Flow-relative packet clock, clamped like FlowAssembler for reordered
    // captures. The server's feature path keys on out.ts_us (the absolute
    // trace clock), so the clamp only affects the borrowed Packet view.
    storage_.ts_us = packet.ts_us >= entry.first_ts_us
                         ? packet.ts_us - entry.first_ts_us
                         : 0;
    storage_.len = packet.wire_len;
    storage_.bytes = packet.payload;
    out.ts_us = packet.ts_us;
    out.flow = entry.flow;
    out.index = entry.next_index++;
    out.key = packet.key;
    out.label = entry.label;
    out.packet = &storage_;
    return true;
  }
  return false;
}

PartitionedPcapSource::PartitionedPcapSource(const std::string& path,
                                             std::size_t partitions,
                                             runtime::DigestPartitionFn fn,
                                             const FlowLabeler& labeler)
    : fn_(std::move(fn)) {
  if (partitions == 0) {
    throw std::invalid_argument("PartitionedPcapSource: zero partitions");
  }
  if (!fn_) {
    throw std::invalid_argument(
        "PartitionedPcapSource: null partition function");
  }
  inner_.reserve(partitions);
  for (std::size_t p = 0; p < partitions; ++p) {
    inner_.push_back(std::make_unique<PcapPacketSource>(path, labeler));
  }
}

bool PartitionedPcapSource::Next(std::size_t p, traffic::TracePacket& out) {
  // Each partition decodes every record and keeps 1/N of them; the skipped
  // packets still feed partition p's flow map, so flow ids match the
  // unpartitioned source.
  while (inner_[p]->Next(out)) {
    if (fn_(out.key.digest) == p) return true;
  }
  return false;
}

const char* ReplayClockName(ReplayClock clock) {
  switch (clock) {
    case ReplayClock::kAfap:
      return "afap";
    case ReplayClock::kTracePaced:
      return "paced";
    case ReplayClock::kSpeedup:
      return "speedup";
  }
  return "?";
}

TraceReplayer::TraceReplayer(runtime::PacketSource& inner, ReplayOptions opts)
    : inner_(inner), opts_(opts) {
  if (opts_.clock == ReplayClock::kSpeedup && !(opts_.speedup > 0.0)) {
    throw std::invalid_argument("TraceReplayer: speedup must be > 0");
  }
  if (opts_.clock == ReplayClock::kTracePaced) {
    opts_.speedup = 1.0;
  }
}

bool TraceReplayer::Next(traffic::TracePacket& out) {
  if (!inner_.Next(out)) return false;
  const auto now = std::chrono::steady_clock::now();
  if (!started_) {
    started_ = true;
    wall_start_ = now;
    stats_.first_ts_us = out.ts_us;
    stats_.last_ts_us = out.ts_us;
  }
  // Reordered captures can step the trace clock backwards; clamp like the
  // rest of the pipeline (such packets are simply due immediately) instead
  // of wrapping the unsigned difference into a ~2^64 us deadline.
  stats_.last_ts_us = std::max(stats_.last_ts_us, out.ts_us);
  ++stats_.packets;

  if (opts_.clock != ReplayClock::kAfap) {
    const auto elapsed_us =
        out.ts_us <= stats_.first_ts_us
            ? 0.0
            : static_cast<double>(out.ts_us - stats_.first_ts_us) /
                  opts_.speedup;
    const auto due = wall_start_ + std::chrono::duration_cast<
                                       std::chrono::steady_clock::duration>(
                                       std::chrono::duration<double, std::micro>(
                                           elapsed_us));
    auto t = now;
    if (t < due) {
      // Sleep to within half a millisecond of the deadline, then spin — the
      // OS timer's granularity would otherwise smear every IPD.
      if (due - t > std::chrono::milliseconds(1)) {
        std::this_thread::sleep_for(due - t -
                                    std::chrono::microseconds(500));
      }
      while ((t = std::chrono::steady_clock::now()) < due) {
      }
    }
    // Lag is measured at actual delivery, so both a late arrival into this
    // call and an oversleeping timer count against the schedule.
    if (t > due) {
      const auto lag = std::chrono::duration_cast<std::chrono::microseconds>(
                           t - due)
                           .count();
      stats_.max_lag_us =
          std::max(stats_.max_lag_us, static_cast<std::uint64_t>(lag));
    }
  }
  stats_.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start_)
                       .count();
  return true;
}

}  // namespace pegasus::io
