// Classic pcap (libpcap / tcpdump) container — native reader and writer,
// no external dependency.
//
// The paper evaluates on real captures (PeerRush, CICIOT2022, ISCXVPN2016);
// this is the layer that lets the repo ingest such files. Format (one
// 24-byte global header, then length-prefixed records):
//
//   magic    u32  0xa1b2c3d4 (us) / 0xa1b23c4d (ns), byte-swapped when the
//                 writing host's byte order differs from the reader's
//   version  u16.u16  2.4
//   thiszone i32, sigfigs u32  (always 0 in practice)
//   snaplen  u32  capture truncation limit
//   linktype u32  1 = Ethernet
//   record:  ts_sec u32, ts_frac u32 (us or ns), incl_len u32, orig_len u32,
//            incl_len bytes of frame data
//
// PcapReader detects all four magic variants (2 byte orders x 2 timestamp
// resolutions) and streams records without loading the file; PcapWriter can
// emit any of the four, and Writer -> Reader round-trips records
// bit-identically (tests/test_io.cpp locks this).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

namespace pegasus::io {

inline constexpr std::uint32_t kPcapMagicMicros = 0xa1b2c3d4u;
inline constexpr std::uint32_t kPcapMagicNanos = 0xa1b23c4du;
inline constexpr std::uint32_t kLinktypeEthernet = 1;

/// Hard per-record size bound, applied regardless of the header's snaplen
/// (which may itself be corrupt, and 0 conventionally means "unlimited") —
/// far above any Ethernet jumbo frame, far below a corrupt-length
/// allocation.
inline constexpr std::uint32_t kMaxRecordBytes = 256 * 1024;

/// File-level knobs. `swapped` selects the non-native byte order on disk
/// (what a capture from an opposite-endian host looks like); readers accept
/// both transparently.
struct PcapOptions {
  bool nanos = false;
  bool swapped = false;
  std::uint32_t snaplen = 65535;
  std::uint32_t linktype = kLinktypeEthernet;
};

/// One capture record. `data.size()` is the captured length (incl_len);
/// `orig_len` is the original wire length, >= incl_len when the capture was
/// truncated by snaplen.
struct PcapRecord {
  std::uint32_t ts_sec = 0;
  /// Microseconds or nanoseconds, per the file header's magic.
  std::uint32_t ts_frac = 0;
  std::uint32_t orig_len = 0;
  std::vector<std::uint8_t> data;

  /// Capture timestamp in microseconds (nanosecond files floor-divide).
  std::uint64_t TsMicros(bool nanos) const {
    return static_cast<std::uint64_t>(ts_sec) * 1000000ull +
           (nanos ? ts_frac / 1000u : ts_frac);
  }

  bool operator==(const PcapRecord&) const = default;
};

/// Records skipped by PcapReader::Next instead of surfaced, by reason.
/// Both indicate a corrupt or adversarial file; neither allocates for,
/// nor propagates, the bad record's bytes.
struct PcapDropStats {
  /// incl_len exceeded the effective cap (min of header snaplen when
  /// non-zero, the reader's max_snaplen, and kMaxRecordBytes).
  std::uint64_t oversize = 0;
  /// incl_len > orig_len: no honest capture stores more bytes than were
  /// on the wire.
  std::uint64_t overcapture = 0;

  std::uint64_t total() const { return oversize + overcapture; }
};

/// Streaming pcap reader. Parses the global header up front (throws
/// std::runtime_error on an unknown magic or a truncated header) and then
/// iterates records; the stream must outlive the reader.
///
/// Robustness contract (untrusted inputs): a record with an implausible
/// length field — incl_len above the snaplen cap, or above its own
/// orig_len — is skipped without allocating and counted in drops(); only
/// a file that ends mid-record (header or payload) throws. The fuzz
/// harness (tests/test_fuzz_io.cpp) holds the reader to exactly this:
/// exceptions are the worst allowed outcome, crashes/overallocation bugs.
class PcapReader {
 public:
  /// `max_snaplen` tightens the per-record size cap below the built-in
  /// kMaxRecordBytes (values above it are clamped to it; the file's own
  /// snaplen field further tightens but never loosens the cap).
  explicit PcapReader(std::istream& is,
                      std::uint32_t max_snaplen = kMaxRecordBytes);

  /// Reads the next well-formed record, skipping (and counting) corrupt
  /// ones. Returns false on clean end-of-file; throws std::runtime_error
  /// if the file ends mid-record.
  bool Next(PcapRecord& out);

  /// File properties recovered from the header (options().swapped reports
  /// whether the file's byte order differs from this host's).
  const PcapOptions& options() const { return opts_; }
  bool nanos() const { return opts_.nanos; }
  std::uint64_t records() const { return records_; }
  /// Corrupt records skipped so far, by reason.
  const PcapDropStats& drops() const { return drops_; }

 private:
  std::uint16_t U16();
  std::uint32_t U32();

  std::istream& is_;
  PcapOptions opts_;
  std::uint32_t max_snaplen_ = kMaxRecordBytes;
  std::uint64_t records_ = 0;
  PcapDropStats drops_;
};

/// Throws std::runtime_error naming `who` unless the capture's linktype is
/// Ethernet — the only linktype the wire parser (io/wire.hpp) understands.
void RequireEthernet(const PcapReader& reader, const char* who);

/// Streaming pcap writer: emits the global header at construction, then one
/// record per Write. The stream must outlive the writer.
class PcapWriter {
 public:
  explicit PcapWriter(std::ostream& os, PcapOptions opts = {});

  /// Writes a record verbatim (timestamp fields are copied as-is, so a
  /// Reader -> Writer pipe with matching options reproduces the input file
  /// byte for byte). Throws std::invalid_argument if orig_len < incl_len.
  void Write(const PcapRecord& rec);

  /// Convenience: splits `ts_us` into (sec, frac) at this file's
  /// resolution. `orig_len` of 0 means "not truncated" (orig_len =
  /// data.size()).
  void Write(std::uint64_t ts_us, std::span<const std::uint8_t> data,
             std::uint32_t orig_len = 0);

  const PcapOptions& options() const { return opts_; }
  std::uint64_t records() const { return records_; }

 private:
  void P16(std::uint16_t v);
  void P32(std::uint32_t v);

  std::ostream& os_;
  PcapOptions opts_;
  std::uint64_t records_ = 0;
};

}  // namespace pegasus::io
