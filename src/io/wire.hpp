// Wire-format parsing: Ethernet(+VLAN) / IPv4 / IPv6 / TCP / UDP -> the
// traffic substrate's packet model.
//
// WireParser is the ingest half: one captured frame in, one ParsedPacket
// out — the packet's capture time, its canonicalized bidirectional 5-tuple
// and 64-bit FlowKey digest (dataplane/flow_key.hpp), the IP-layer wire
// length, and the first traffic::kRawBytesPerPacket L4-payload bytes (what
// the CNN-L feature path consumes). Frames the dataplane would not key flow
// state on (non-IP ethertypes, non-TCP/UDP protocols, frames truncated
// inside their headers) are skipped with per-reason drop counters, exactly
// like a switch parser's drop stats.
//
// BuildFrame is the export half — the inverse serializer the pcap export
// path (io/assemble.hpp) and the fixture generator use, so a synthetic
// Dataset can be written as a real capture and re-ingested bit-identically.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "dataplane/flow_key.hpp"
#include "traffic/packet.hpp"

namespace pegasus::io {

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeIpv6 = 0x86dd;
inline constexpr std::uint16_t kEtherTypeVlan = 0x8100;   // 802.1Q
inline constexpr std::uint16_t kEtherTypeQinQ = 0x88a8;   // 802.1ad

/// One successfully parsed frame.
struct ParsedPacket {
  /// Absolute capture time, microseconds.
  std::uint64_t ts_us = 0;
  /// Canonicalized bidirectional 5-tuple (dataplane::Canonical).
  dataplane::FiveTuple tuple;
  /// DigestTuple(tuple) — the FlowTable / shard routing key.
  dataplane::FlowKey key;
  /// IP-layer wire length: IPv4 total length, or 40 + payload length for
  /// IPv6. Read from the IP header, so it survives snaplen truncation
  /// (unlike the captured byte count).
  std::uint16_t wire_len = 0;
  /// First kRawBytesPerPacket bytes of L4 payload, zero-padded when the
  /// capture holds fewer.
  std::array<std::uint8_t, traffic::kRawBytesPerPacket> payload{};
  /// How many payload bytes were actually present in the capture.
  std::uint16_t payload_captured = 0;
  /// VLAN tags skipped on this frame (0 for untagged).
  std::uint16_t vlan_tags = 0;
};

/// Per-reason drop accounting (a frame increments exactly one of the drop
/// counters, or `parsed`).
struct WireParseStats {
  std::uint64_t frames = 0;
  std::uint64_t parsed = 0;
  /// Frame ended inside its declared L2/L3/L4 headers.
  std::uint64_t truncated = 0;
  /// Ethertype is neither IPv4 nor IPv6 (after VLAN unwrapping).
  std::uint64_t non_ip = 0;
  /// IP protocol is neither TCP nor UDP.
  std::uint64_t non_l4 = 0;
  /// Non-first IPv4 fragments (no L4 header to key on). IPv6 fragments
  /// arrive behind an extension header and count as non_l4.
  std::uint64_t fragments = 0;
  /// Total VLAN tags unwrapped (can exceed `frames` under QinQ stacking).
  std::uint64_t vlan_tags = 0;
};

class WireParser {
 public:
  /// Parses one Ethernet frame captured at `ts_us`. Returns true and fills
  /// `out` for TCP/UDP over IPv4/IPv6 (VLAN/QinQ tags unwrapped); otherwise
  /// counts the drop reason and returns false.
  ///
  /// Fault site kWireCorrupt (runtime/fault.hpp) flips one byte of the
  /// frame — in a private scratch copy, the caller's buffer is never
  /// touched — before parsing, modeling corrupt capture bytes. The parser
  /// must absorb any such frame as a parse-or-counted-drop, never a crash
  /// (the contract the fuzz harness enforces on fully arbitrary bytes).
  bool Parse(std::span<const std::uint8_t> frame, std::uint64_t ts_us,
             ParsedPacket& out);

  const WireParseStats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

 private:
  WireParseStats stats_;
  /// Scratch buffer for kWireCorrupt frames (member, not per-call: Parse
  /// stays allocation-free on the hot path once warmed).
  std::vector<std::uint8_t> corrupt_scratch_;
};

/// Serializes a packet back onto the wire: Ethernet header (deterministic
/// locally-administered MACs derived from the tuple digest), IPv4 or IPv6,
/// TCP or UDP, then `payload`. `wire_len` lands in the IP length field
/// (IPv4 total length / IPv6 payload length + 40), which is what WireParser
/// reads back — the frame itself always carries the full payload span, the
/// way a snaplen-truncated capture carries fewer bytes than orig_len.
/// Throws std::invalid_argument if wire_len is smaller than the IP+L4
/// headers or the tuple's version/proto is unsupported.
std::vector<std::uint8_t> BuildFrame(const dataplane::FiveTuple& tuple,
                                     std::span<const std::uint8_t> payload,
                                     std::uint16_t wire_len);

/// Minimum wire_len BuildFrame accepts for a tuple (IP header + L4 header).
std::uint16_t MinWireLen(const dataplane::FiveTuple& tuple);

}  // namespace pegasus::io
