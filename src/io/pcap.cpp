#include "io/pcap.hpp"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "core/stream_io.hpp"

namespace pegasus::io {

namespace {

constexpr std::uint16_t Swap16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v >> 8) | (v << 8));
}

constexpr std::uint32_t Swap32(std::uint32_t v) {
  return (v >> 24) | ((v >> 8) & 0x0000ff00u) | ((v << 8) & 0x00ff0000u) |
         (v << 24);
}

}  // namespace

// ---------------------------------------------------------------- reader

PcapReader::PcapReader(std::istream& is, std::uint32_t max_snaplen)
    : is_(is), max_snaplen_(std::min(max_snaplen, kMaxRecordBytes)) {
  const auto magic = core::ReadPod<std::uint32_t>(is_, "PcapReader header");
  switch (magic) {
    case kPcapMagicMicros:
      break;
    case kPcapMagicNanos:
      opts_.nanos = true;
      break;
    case Swap32(kPcapMagicMicros):
      opts_.swapped = true;
      break;
    case Swap32(kPcapMagicNanos):
      opts_.swapped = true;
      opts_.nanos = true;
      break;
    default:
      throw std::runtime_error("PcapReader: not a pcap file (bad magic)");
  }
  const std::uint16_t major = U16();
  const std::uint16_t minor = U16();
  if (major != 2) {
    throw std::runtime_error("PcapReader: unsupported pcap version " +
                             std::to_string(major) + "." +
                             std::to_string(minor));
  }
  U32();  // thiszone
  U32();  // sigfigs
  opts_.snaplen = U32();
  opts_.linktype = U32();
}

std::uint16_t PcapReader::U16() {
  const auto v = core::ReadPod<std::uint16_t>(is_, "PcapReader header");
  return opts_.swapped ? Swap16(v) : v;
}

std::uint32_t PcapReader::U32() {
  const auto v = core::ReadPod<std::uint32_t>(is_, "PcapReader");
  return opts_.swapped ? Swap32(v) : v;
}

bool PcapReader::Next(PcapRecord& out) {
  for (;;) {
    // Clean EOF is only legal on a record boundary: probe the first header
    // byte before committing to a record.
    if (is_.peek() == std::istream::traits_type::eof()) {
      return false;
    }
    out.ts_sec = U32();
    out.ts_frac = U32();
    const std::uint32_t incl_len = U32();
    out.orig_len = U32();
    // Bound the record so a corrupt length field is skipped cleanly
    // instead of driving a multi-GiB allocation — the file's own snaplen
    // cannot be trusted for this (it may be corrupt too, and 0 means
    // "unlimited"), so the effective cap is the tightest of the header
    // snaplen, the reader's configured cap and the built-in ceiling.
    const std::uint32_t cap =
        std::min(opts_.snaplen != 0 ? opts_.snaplen : max_snaplen_,
                 max_snaplen_);
    const bool oversize = incl_len > cap;
    // No honest capture stores more bytes than were on the wire: an
    // incl_len above orig_len is corruption (or an attack), not data.
    const bool overcapture = incl_len > out.orig_len;
    if (oversize || overcapture) {
      // Distinct drop reason, no allocation: stream past the claimed
      // payload and resync on the next record header. A skip that runs
      // off the end of the file is a truncation, same as a short read.
      if (oversize) ++drops_.oversize;
      if (!oversize && overcapture) ++drops_.overcapture;
      is_.ignore(static_cast<std::streamsize>(incl_len));
      if (is_.gcount() != static_cast<std::streamsize>(incl_len)) {
        throw std::runtime_error("PcapReader: truncated record " +
                                 std::to_string(records_ + drops_.total()));
      }
      continue;
    }
    out.data.resize(incl_len);
    if (incl_len > 0) {
      is_.read(reinterpret_cast<char*>(out.data.data()), incl_len);
      if (!is_) {
        throw std::runtime_error("PcapReader: truncated record " +
                                 std::to_string(records_ + drops_.total()));
      }
    }
    ++records_;
    return true;
  }
}

void RequireEthernet(const PcapReader& reader, const char* who) {
  if (reader.options().linktype != kLinktypeEthernet) {
    throw std::runtime_error(std::string(who) + ": linktype " +
                             std::to_string(reader.options().linktype) +
                             " is not Ethernet");
  }
}

// ---------------------------------------------------------------- writer

PcapWriter::PcapWriter(std::ostream& os, PcapOptions opts)
    : os_(os), opts_(opts) {
  P32(opts_.nanos ? kPcapMagicNanos : kPcapMagicMicros);
  P16(2);  // version 2.4
  P16(4);
  P32(0);  // thiszone
  P32(0);  // sigfigs
  P32(opts_.snaplen);
  P32(opts_.linktype);
}

void PcapWriter::P16(std::uint16_t v) {
  core::WritePod(os_, opts_.swapped ? Swap16(v) : v);
}

void PcapWriter::P32(std::uint32_t v) {
  core::WritePod(os_, opts_.swapped ? Swap32(v) : v);
}

void PcapWriter::Write(const PcapRecord& rec) {
  if (rec.data.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("PcapWriter: record too large");
  }
  const auto incl_len = static_cast<std::uint32_t>(rec.data.size());
  if (rec.orig_len < incl_len) {
    throw std::invalid_argument(
        "PcapWriter: orig_len below the captured length");
  }
  P32(rec.ts_sec);
  P32(rec.ts_frac);
  P32(incl_len);
  P32(rec.orig_len);
  os_.write(reinterpret_cast<const char*>(rec.data.data()),
            static_cast<std::streamsize>(rec.data.size()));
  ++records_;
}

void PcapWriter::Write(std::uint64_t ts_us,
                       std::span<const std::uint8_t> data,
                       std::uint32_t orig_len) {
  PcapRecord rec;
  rec.ts_sec = static_cast<std::uint32_t>(ts_us / 1000000ull);
  const auto frac_us = static_cast<std::uint32_t>(ts_us % 1000000ull);
  rec.ts_frac = opts_.nanos ? frac_us * 1000u : frac_us;
  rec.data.assign(data.begin(), data.end());
  rec.orig_len =
      orig_len != 0 ? orig_len : static_cast<std::uint32_t>(data.size());
  Write(rec);
}

}  // namespace pegasus::io
