#include "io/wire.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "runtime/fault.hpp"

namespace pegasus::io {

namespace {

constexpr std::size_t kEthHeader = 14;
constexpr std::size_t kIpv4MinHeader = 20;
constexpr std::size_t kIpv6Header = 40;
constexpr std::size_t kTcpMinHeader = 20;
constexpr std::size_t kUdpHeader = 8;

std::uint16_t Be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

void PutBe16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

/// RFC 1071 ones'-complement sum over the IPv4 header.
std::uint16_t Ipv4HeaderChecksum(const std::uint8_t* hdr, std::size_t len) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < len; i += 2) {
    sum += Be16(hdr + i);
  }
  while (sum >> 16) {
    sum = (sum & 0xffffu) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum);
}

}  // namespace

bool WireParser::Parse(std::span<const std::uint8_t> frame,
                       std::uint64_t ts_us, ParsedPacket& out) {
  ++stats_.frames;
  if (runtime::FaultFires(runtime::FaultSite::kWireCorrupt) &&
      !frame.empty()) {
    // Corrupt-capture fault: copy the frame into the scratch buffer and
    // flip one deterministically chosen byte, then parse the damaged
    // copy. The caller's buffer stays pristine.
    const std::uint64_t param = runtime::FaultInjector::Instance().Param(
        runtime::FaultSite::kWireCorrupt);
    corrupt_scratch_.assign(frame.begin(), frame.end());
    const std::size_t index =
        (param + stats_.frames) % corrupt_scratch_.size();
    corrupt_scratch_[index] ^= static_cast<std::uint8_t>(1u << (param % 8));
    frame = corrupt_scratch_;
  }
  const std::uint8_t* p = frame.data();
  std::size_t len = frame.size();
  if (len < kEthHeader) {
    ++stats_.truncated;
    return false;
  }
  std::uint16_t ether_type = Be16(p + 12);
  std::size_t off = kEthHeader;
  std::uint16_t vlan_tags = 0;
  while (ether_type == kEtherTypeVlan || ether_type == kEtherTypeQinQ) {
    if (len < off + 4) {
      ++stats_.truncated;
      return false;
    }
    ether_type = Be16(p + off + 2);
    off += 4;
    ++vlan_tags;
    ++stats_.vlan_tags;
  }

  dataplane::FiveTuple tuple;
  std::uint16_t wire_len = 0;
  std::size_t l4_off = 0;
  if (ether_type == kEtherTypeIpv4) {
    if (len < off + kIpv4MinHeader) {
      ++stats_.truncated;
      return false;
    }
    const std::uint8_t* ip = p + off;
    const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0f) * 4;
    if ((ip[0] >> 4) != 4 || ihl < kIpv4MinHeader || len < off + ihl) {
      ++stats_.truncated;
      return false;
    }
    // Non-first fragments carry no L4 header — the bytes at the port
    // offsets are mid-datagram payload. Drop them (first fragments,
    // offset 0, parse normally).
    if ((((ip[6] & 0x1f) << 8) | ip[7]) != 0) {
      ++stats_.fragments;
      return false;
    }
    tuple.version = 4;
    tuple.proto = ip[9];
    wire_len = Be16(ip + 2);
    std::copy(ip + 12, ip + 16, tuple.src.begin());
    std::copy(ip + 16, ip + 20, tuple.dst.begin());
    l4_off = off + ihl;
  } else if (ether_type == kEtherTypeIpv6) {
    if (len < off + kIpv6Header) {
      ++stats_.truncated;
      return false;
    }
    const std::uint8_t* ip = p + off;
    if ((ip[0] >> 4) != 6) {
      ++stats_.truncated;
      return false;
    }
    tuple.version = 6;
    tuple.proto = ip[6];  // next header; extension chains count as non-L4
    wire_len = static_cast<std::uint16_t>(
        std::min<std::uint32_t>(kIpv6Header + Be16(ip + 4), 0xffffu));
    std::copy(ip + 8, ip + 24, tuple.src.begin());
    std::copy(ip + 24, ip + 40, tuple.dst.begin());
    l4_off = off + kIpv6Header;
  } else {
    ++stats_.non_ip;
    return false;
  }

  std::size_t payload_off = 0;
  if (tuple.proto == dataplane::kProtoTcp) {
    if (len < l4_off + kTcpMinHeader) {
      ++stats_.truncated;
      return false;
    }
    const std::uint8_t* tcp = p + l4_off;
    const std::size_t data_off = static_cast<std::size_t>(tcp[12] >> 4) * 4;
    if (data_off < kTcpMinHeader || len < l4_off + data_off) {
      ++stats_.truncated;
      return false;
    }
    tuple.src_port = Be16(tcp);
    tuple.dst_port = Be16(tcp + 2);
    payload_off = l4_off + data_off;
  } else if (tuple.proto == dataplane::kProtoUdp) {
    if (len < l4_off + kUdpHeader) {
      ++stats_.truncated;
      return false;
    }
    const std::uint8_t* udp = p + l4_off;
    tuple.src_port = Be16(udp);
    tuple.dst_port = Be16(udp + 2);
    payload_off = l4_off + kUdpHeader;
  } else {
    ++stats_.non_l4;
    return false;
  }

  out.ts_us = ts_us;
  out.tuple = dataplane::Canonical(tuple);
  out.key = dataplane::DigestTuple(out.tuple);
  out.wire_len = wire_len;
  out.vlan_tags = vlan_tags;
  out.payload.fill(0);
  // Ethernet pads runt frames up to its 60-byte minimum; in such frames
  // the bytes past the IP datagram's declared end are pad, not payload —
  // keep them out of the raw-byte feature window. Larger frames trust the
  // capture (snaplen-style fixtures may carry more payload than wire_len
  // admits).
  std::size_t limit = len;
  const std::size_t datagram_end = off + wire_len;
  if (len <= 64 + 4ull * vlan_tags && datagram_end < len) {
    limit = std::max(datagram_end, payload_off);
  }
  const std::size_t captured =
      std::min(limit - payload_off, traffic::kRawBytesPerPacket);
  std::memcpy(out.payload.data(), p + payload_off, captured);
  out.payload_captured = static_cast<std::uint16_t>(captured);
  ++stats_.parsed;
  return true;
}

std::uint16_t MinWireLen(const dataplane::FiveTuple& tuple) {
  const std::size_t ip =
      tuple.version == 6 ? kIpv6Header : kIpv4MinHeader;
  const std::size_t l4 =
      tuple.proto == dataplane::kProtoUdp ? kUdpHeader : kTcpMinHeader;
  return static_cast<std::uint16_t>(ip + l4);
}

std::vector<std::uint8_t> BuildFrame(const dataplane::FiveTuple& tuple,
                                     std::span<const std::uint8_t> payload,
                                     std::uint16_t wire_len) {
  if (tuple.version != 4 && tuple.version != 6) {
    throw std::invalid_argument("BuildFrame: unsupported IP version");
  }
  if (tuple.proto != dataplane::kProtoTcp &&
      tuple.proto != dataplane::kProtoUdp) {
    throw std::invalid_argument("BuildFrame: unsupported L4 protocol");
  }
  if (wire_len < MinWireLen(tuple)) {
    throw std::invalid_argument(
        "BuildFrame: wire_len below the IP+L4 header size");
  }

  const std::size_t ip_hdr =
      tuple.version == 6 ? kIpv6Header : kIpv4MinHeader;
  const std::size_t l4_hdr =
      tuple.proto == dataplane::kProtoUdp ? kUdpHeader : kTcpMinHeader;
  std::vector<std::uint8_t> frame(kEthHeader + ip_hdr + l4_hdr +
                                  payload.size());
  std::uint8_t* p = frame.data();

  // Ethernet: locally-administered unicast MACs derived from the flow
  // digest, so a capture's L2 is deterministic in its flows.
  const std::uint64_t digest = dataplane::DigestTuple(tuple).digest;
  p[0] = 0x02;
  p[6] = 0x02;
  for (std::size_t i = 0; i < 5; ++i) {
    p[1 + i] = static_cast<std::uint8_t>(digest >> (8 * i));
    p[7 + i] = static_cast<std::uint8_t>(digest >> (8 * (i + 3)));
  }
  PutBe16(p + 12,
          tuple.version == 6 ? kEtherTypeIpv6 : kEtherTypeIpv4);

  std::uint8_t* ip = p + kEthHeader;
  if (tuple.version == 4) {
    ip[0] = 0x45;  // version 4, 20-byte header
    PutBe16(ip + 2, wire_len);
    PutBe16(ip + 6, 0x4000);  // DF
    ip[8] = 64;               // TTL
    ip[9] = tuple.proto;
    std::copy(tuple.src.begin(), tuple.src.begin() + 4, ip + 12);
    std::copy(tuple.dst.begin(), tuple.dst.begin() + 4, ip + 16);
    PutBe16(ip + 10, Ipv4HeaderChecksum(ip, kIpv4MinHeader));
  } else {
    ip[0] = 0x60;
    PutBe16(ip + 4, static_cast<std::uint16_t>(wire_len - kIpv6Header));
    ip[6] = tuple.proto;
    ip[7] = 64;  // hop limit
    std::copy(tuple.src.begin(), tuple.src.end(), ip + 8);
    std::copy(tuple.dst.begin(), tuple.dst.end(), ip + 24);
  }

  std::uint8_t* l4 = ip + ip_hdr;
  PutBe16(l4, tuple.src_port);
  PutBe16(l4 + 2, tuple.dst_port);
  if (tuple.proto == dataplane::kProtoTcp) {
    l4[12] = 0x50;  // 20-byte header
    l4[13] = 0x18;  // PSH|ACK
    PutBe16(l4 + 14, 0xffff);
  } else {
    PutBe16(l4 + 4, static_cast<std::uint16_t>(wire_len - ip_hdr));
  }

  std::copy(payload.begin(), payload.end(), l4 + l4_hdr);
  return frame;
}

}  // namespace pegasus::io
