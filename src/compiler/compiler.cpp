#include "compiler/compiler.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace pegasus::compiler {

namespace {

[[noreturn]] void MissingArtifact(const char* pass, const char* what) {
  throw std::logic_error(std::string("compiler pass '") + pass +
                         "' requires " + what +
                         " — check the pass order in the pipeline");
}

}  // namespace

// ---------------------------------------------------------------- context

CompilationContext::CompilationContext(core::Program program,
                                       std::span<const float> train_inputs,
                                       std::size_t num_samples)
    : program_(std::move(program)),
      train_(train_inputs),
      num_samples_(num_samples) {}

CompilationContext::CompilationContext(const core::CompiledModel& compiled)
    : external_compiled_(&compiled) {}

core::Program& CompilationContext::program() {
  if (!program_) MissingArtifact("<context>", "a program");
  return *program_;
}

const core::Program& CompilationContext::program() const {
  if (!program_) MissingArtifact("<context>", "a program");
  return *program_;
}

core::Program CompilationContext::TakeProgram() {
  if (!program_) MissingArtifact("<context>", "a program");
  core::Program out = std::move(*program_);
  program_.reset();
  return out;
}

void CompilationContext::ReplaceTrainInputs(std::vector<float> data,
                                            std::size_t num_samples) {
  owned_train_ = std::move(data);
  train_ = owned_train_;
  num_samples_ = num_samples;
}

const core::QuantizationPlan& CompilationContext::plan() const {
  if (!plan_) MissingArtifact("<context>", "a quantization plan");
  return *plan_;
}

core::QuantizationPlan CompilationContext::TakePlan() {
  if (!plan_) MissingArtifact("<context>", "a quantization plan");
  core::QuantizationPlan out = std::move(*plan_);
  plan_.reset();
  return out;
}

const core::CompiledModel& CompilationContext::compiled() const {
  if (compiled_) return *compiled_;
  if (external_compiled_) return *external_compiled_;
  MissingArtifact("<context>", "a compiled model");
}

void CompilationContext::SetCompiled(core::CompiledModel model) {
  compiled_ = std::move(model);
  external_compiled_ = nullptr;
}

core::CompiledModel CompilationContext::TakeCompiled() {
  if (!compiled_) MissingArtifact("<context>", "an owned compiled model");
  core::CompiledModel out = std::move(*compiled_);
  compiled_.reset();
  return out;
}

const runtime::LoweredModel& CompilationContext::lowered() const {
  if (!lowered_) MissingArtifact("<context>", "a lowered model");
  return *lowered_;
}

void CompilationContext::SetLowered(runtime::LoweredModel model) {
  lowered_ = std::move(model);
}

runtime::LoweredModel CompilationContext::TakeLowered() {
  if (!lowered_) MissingArtifact("<context>", "a lowered model");
  runtime::LoweredModel out = std::move(*lowered_);
  lowered_.reset();
  return out;
}

// ----------------------------------------------------------------- passes

namespace {

/// Adapter for the four individual fusion rewrites.
class RewritePass final : public Pass {
 public:
  using RewriteFn = std::size_t (*)(core::Program&);
  RewritePass(std::string_view name, RewriteFn fn) : name_(name), fn_(fn) {}

  std::string_view name() const override { return name_; }

  void Run(CompilationContext& ctx, PassStats& stats) const override {
    if (!ctx.has_program()) MissingArtifact(name_.c_str(), "a program");
    core::Program& p = ctx.program();
    stats.maps_before = p.NumMaps();
    const std::size_t sum_reduces_before = p.NumSumReduces();
    stats.rewrites_applied = fn_(p);
    stats.maps_after = p.NumMaps();
    core::FusionStats& agg = ctx.fusion_stats;
    if (agg.maps_before == 0 && agg.rewrites == 0 && agg.iterations == 0) {
      agg.maps_before = stats.maps_before;
      agg.sum_reduces_before = sum_reduces_before;
    }
    agg.rewrites += stats.rewrites_applied;
    ++agg.iterations;
    agg.maps_after = stats.maps_after;
    agg.sum_reduces_after = p.NumSumReduces();
  }

 private:
  std::string name_;
  RewriteFn fn_;
};

class FuseBasicPass final : public Pass {
 public:
  std::string_view name() const override { return "fuse-basic"; }

  void Run(CompilationContext& ctx, PassStats& stats) const override {
    if (!ctx.has_program()) MissingArtifact("fuse-basic", "a program");
    const core::FusionStats fs = core::FuseBasic(ctx.program());
    stats.maps_before = fs.maps_before;
    stats.maps_after = fs.maps_after;
    stats.rewrites_applied = fs.rewrites;
    stats.note = "maps " + std::to_string(fs.maps_before) + " -> " +
                 std::to_string(fs.maps_after) + " in " +
                 std::to_string(fs.iterations) + " iterations";
    core::FusionStats& agg = ctx.fusion_stats;
    if (agg.maps_before == 0 && agg.rewrites == 0 && agg.iterations == 0) {
      agg = fs;  // first fusion work on this context
    } else {
      agg.rewrites += fs.rewrites;
      agg.iterations += fs.iterations;
      agg.maps_after = fs.maps_after;
      agg.sum_reduces_after = fs.sum_reduces_after;
    }
  }
};

class AugmentPass final : public Pass {
 public:
  std::string_view name() const override { return "augment"; }

  void Run(CompilationContext& ctx, PassStats& stats) const override {
    if (!ctx.has_program()) MissingArtifact("augment", "a program");
    const std::size_t n = ctx.num_samples();
    const std::size_t in_dim =
        ctx.program().value(ctx.program().input()).dim;
    std::size_t full_n = n;
    std::vector<float> augmented = core::AugmentTrainingInputs(
        in_dim, ctx.train_inputs(), n, ctx.compile_options, full_n);
    if (!augmented.empty()) {
      ctx.ReplaceTrainInputs(std::move(augmented), full_n);
    }
    stats.note = std::to_string(full_n - n) + " uniform probe rows appended";
  }
};

class QuantizationPass final : public Pass {
 public:
  std::string_view name() const override { return "quantize-plan"; }

  void Run(CompilationContext& ctx, PassStats& stats) const override {
    if (!ctx.has_program()) MissingArtifact("quantize-plan", "a program");
    core::QuantizationPlan plan = core::PlanQuantization(
        ctx.program(), ctx.train_inputs(), ctx.num_samples(),
        ctx.compile_options);
    int max_domain = 0;
    std::size_t dims = 0;
    for (const auto& value : plan.quant) {
      for (const core::DimQuant& q : value) {
        max_domain = std::max(max_domain, q.domain_bits);
        ++dims;
      }
    }
    stats.note = std::to_string(dims) + " dims planned, widest domain " +
                 std::to_string(max_domain) + "b";
    ctx.SetPlan(std::move(plan));
  }
};

class TableGenPass final : public Pass {
 public:
  std::string_view name() const override { return "tablegen"; }

  void Run(CompilationContext& ctx, PassStats& stats) const override {
    if (!ctx.has_program()) MissingArtifact("tablegen", "a program");
    if (!ctx.has_plan()) MissingArtifact("tablegen", "a quantization plan");
    core::CompiledModel model = core::BuildFuzzyTables(
        ctx.TakeProgram(), ctx.TakePlan(), ctx.train_inputs(),
        ctx.num_samples(), ctx.compile_options);
    stats.tables_emitted = model.NumTables();
    stats.leaves_emitted = model.TotalLeaves();
    ctx.SetCompiled(std::move(model));
  }
};

class LoweringPass final : public Pass {
 public:
  std::string_view name() const override { return "lower"; }

  void Run(CompilationContext& ctx, PassStats& stats) const override {
    if (!ctx.has_compiled()) {
      MissingArtifact("lower", "a compiled model");
    }
    runtime::LoweredModel lowered =
        runtime::Lower(ctx.compiled(), ctx.lowering_options);
    const dataplane::ResourceReport report = lowered.Report();
    stats.tables_emitted = lowered.NumTables();
    stats.sram_bits = report.sram_bits;
    stats.tcam_bits = report.tcam_bits;
    stats.stages_used = report.stages_used;
    const auto index = lowered.pipeline().MatchIndexReport();
    stats.indexed_tables = index.indexed_tables;
    stats.index_bytes = index.bytes;
    stats.index_build_ms = index.build_ms;
    if (index.indexed_tables > 0) {
      stats.note = "match index: " + std::to_string(index.intervals) +
                   " intervals, " + std::to_string(index.nibble_chunks) +
                   " nibble chunks";
    }
    ctx.SetLowered(std::move(lowered));
  }
};

}  // namespace

std::unique_ptr<Pass> MakeMergeMapsPass() {
  return std::make_unique<RewritePass>("fuse-merge-maps",
                                       &core::MergeConsecutiveMaps);
}
std::unique_ptr<Pass> MakePushPartitionPass() {
  return std::make_unique<RewritePass>("fuse-push-partition",
                                       &core::PushElementwiseThroughPartition);
}
std::unique_ptr<Pass> MakeLinearReorderPass() {
  return std::make_unique<RewritePass>("fuse-linear-reorder",
                                       &core::LinearReorderOverSumReduce);
}
std::unique_ptr<Pass> MakeFlattenSumsPass() {
  return std::make_unique<RewritePass>("fuse-flatten-sums",
                                       &core::FlattenSumReduces);
}
std::unique_ptr<Pass> MakeFuseBasicPass() {
  return std::make_unique<FuseBasicPass>();
}
std::unique_ptr<Pass> MakeAugmentPass() {
  return std::make_unique<AugmentPass>();
}
std::unique_ptr<Pass> MakeQuantizationPass() {
  return std::make_unique<QuantizationPass>();
}
std::unique_ptr<Pass> MakeTableGenPass() {
  return std::make_unique<TableGenPass>();
}
std::unique_ptr<Pass> MakeLoweringPass() {
  return std::make_unique<LoweringPass>();
}

// ----------------------------------------------------------- pass manager

PassManager& PassManager::Add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

void PassManager::Run(CompilationContext& ctx) const {
  for (const auto& pass : passes_) {
    PassStats stats;
    stats.name = std::string(pass->name());
    const auto start = std::chrono::steady_clock::now();
    pass->Run(ctx, stats);
    const auto end = std::chrono::steady_clock::now();
    stats.wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    ctx.mutable_history().push_back(std::move(stats));
  }
}

PassManager PassManager::FusionPipeline() {
  PassManager pm;
  pm.Add(MakeFuseBasicPass());
  return pm;
}

PassManager PassManager::ModelPipeline() {
  PassManager pm;
  pm.Add(MakeFuseBasicPass())
      .Add(MakeAugmentPass())
      .Add(MakeQuantizationPass())
      .Add(MakeTableGenPass());
  return pm;
}

PassManager PassManager::SwitchPipeline() {
  PassManager pm = ModelPipeline();
  pm.Add(MakeLoweringPass());
  return pm;
}

PassManager PassManager::LoweringPipeline() {
  PassManager pm;
  pm.Add(MakeLoweringPass());
  return pm;
}

// ---------------------------------------------------------------- drivers

CompileModelResult CompileToModel(core::Program program,
                                  std::span<const float> train_inputs,
                                  std::size_t num_samples,
                                  const core::CompileOptions& options) {
  CompilationContext ctx(std::move(program), train_inputs, num_samples);
  ctx.compile_options = options;
  PassManager::ModelPipeline().Run(ctx);
  CompileModelResult out{ctx.TakeCompiled(), ctx.fusion_stats,
                         std::move(ctx.mutable_history())};
  return out;
}

CompileSwitchResult CompileToSwitch(core::Program program,
                                    std::span<const float> train_inputs,
                                    std::size_t num_samples,
                                    const core::CompileOptions& options,
                                    const runtime::LoweringOptions& lowering) {
  CompilationContext ctx(std::move(program), train_inputs, num_samples);
  ctx.compile_options = options;
  ctx.lowering_options = lowering;
  PassManager::SwitchPipeline().Run(ctx);
  CompileSwitchResult out{ctx.TakeCompiled(), ctx.TakeLowered(),
                          ctx.fusion_stats, std::move(ctx.mutable_history())};
  return out;
}

runtime::LoweredModel PlaceOnSwitch(const core::CompiledModel& model,
                                    const runtime::LoweringOptions& options,
                                    std::vector<PassStats>* history) {
  CompilationContext ctx(model);
  ctx.lowering_options = options;
  PassManager::LoweringPipeline().Run(ctx);
  if (history != nullptr) {
    history->insert(history->end(), ctx.history().begin(),
                    ctx.history().end());
  }
  return ctx.TakeLowered();
}

VersionedModel CompileVersioned(core::Program program,
                                std::span<const float> train_inputs,
                                std::size_t num_samples,
                                const core::CompileOptions& options,
                                const runtime::LoweringOptions& lowering) {
  CompileSwitchResult res = CompileToSwitch(std::move(program), train_inputs,
                                            num_samples, options, lowering);
  VersionedModel vm;
  vm.compiled =
      std::make_shared<const core::CompiledModel>(std::move(res.model));
  auto lowered =
      std::make_shared<runtime::LoweredModel>(std::move(res.lowered));
  vm.report = lowered->Report();
  vm.lowered = std::move(lowered);
  vm.lowering = lowering;
  vm.fusion = res.fusion;
  vm.history = std::move(res.history);
  return vm;
}

VersionedModel CompileVersioned(const core::CompiledModel& model,
                                const runtime::LoweringOptions& lowering) {
  VersionedModel vm;
  vm.compiled = std::make_shared<const core::CompiledModel>(model);
  auto lowered = std::make_shared<runtime::LoweredModel>(
      PlaceOnSwitch(*vm.compiled, lowering, &vm.history));
  vm.report = lowered->Report();
  vm.lowered = std::move(lowered);
  vm.lowering = lowering;
  return vm;
}

void PrintDiagnostics(std::ostream& os, std::span<const PassStats> history) {
  for (const PassStats& s : history) {
    os << "  [" << s.name << "] " << s.wall_ms << " ms";
    if (s.maps_before != s.maps_after || s.rewrites_applied > 0) {
      os << "; maps " << s.maps_before << " -> " << s.maps_after << " ("
         << s.rewrites_applied << " rewrites)";
    }
    if (s.tables_emitted > 0) {
      os << "; " << s.tables_emitted << " tables";
      if (s.leaves_emitted > 0) os << ", " << s.leaves_emitted << " leaves";
    }
    if (s.stages_used > 0) {
      os << "; " << s.stages_used << " stages, " << s.sram_bits
         << "b SRAM, " << s.tcam_bits << "b TCAM";
    }
    if (s.indexed_tables > 0) {
      os << "; " << s.indexed_tables << " indexed tables ("
         << s.index_bytes / 1024 << " KiB, built in " << s.index_build_ms
         << " ms)";
    }
    if (!s.note.empty()) os << "; " << s.note;
    os << "\n";
  }
}

}  // namespace pegasus::compiler
