// Unified compiler driver: the full model→switch chain (basic primitive
// fusion → quantization planning → clustering/tablegen → placement/lowering)
// as named, ordered passes over a shared CompilationContext, with per-pass
// diagnostics (rewrites applied, maps eliminated, tables emitted, SRAM/TCAM
// consumed, stage occupancy, wall time).
//
// The PassManager replaces the ad-hoc FuseBasic + CompileProgram (+ Lower)
// call sequences that used to be repeated across src/models, bench/ and the
// examples. Each stage stays available as a standalone function in core/ and
// runtime/ — the passes only orchestrate — so the staged driver is the
// single seam future scaling work (sharding, async placement, multi-model
// pipelines) plugs into.
//
// Bit-exactness contract: running SwitchPipeline() over a context is
// observationally identical to the legacy sequence
//   FuseBasic(p); m = CompileProgram(p, x, n, copts); l = Lower(m, lopts);
// — same CompiledModel tables, same LoweredModel ResourceReport
// (asserted by tests/test_compiler.cpp).
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/fusion.hpp"
#include "core/tablegen.hpp"
#include "runtime/lowering.hpp"

namespace pegasus::compiler {

/// Diagnostics for one executed pass. Fields are filled as far as they make
/// sense for the pass kind; `note` carries a human-readable one-liner.
struct PassStats {
  std::string name;
  double wall_ms = 0.0;
  /// Program rewrites applied (fusion passes).
  std::size_t rewrites_applied = 0;
  /// Map-op count around the pass (fusion passes; equal when untouched).
  std::size_t maps_before = 0;
  std::size_t maps_after = 0;
  /// Mapping tables / clustering-tree leaves produced (tablegen, lowering).
  std::size_t tables_emitted = 0;
  std::size_t leaves_emitted = 0;
  /// Switch resources consumed (lowering pass).
  std::size_t sram_bits = 0;
  std::size_t tcam_bits = 0;
  std::size_t stages_used = 0;
  /// Compiled match-index build stats (lowering pass): tables that got a
  /// bit-vector index, their aggregate footprint, and total build time.
  std::size_t indexed_tables = 0;
  std::size_t index_bytes = 0;
  double index_build_ms = 0.0;
  std::string note;
};

/// Mutable state threaded through a pass pipeline. Owns the program and the
/// artifacts produced so far; passes read what they need and fill in the
/// next artifact. Construct with a program + training distribution for the
/// full chain, or with an existing CompiledModel for lowering-only runs.
class CompilationContext {
 public:
  CompilationContext(core::Program program,
                     std::span<const float> train_inputs,
                     std::size_t num_samples);
  /// Lowering-only context: `compiled` is referenced, not copied, and must
  /// outlive the context.
  explicit CompilationContext(const core::CompiledModel& compiled);

  // Knobs consumed by the quantization/tablegen and lowering passes.
  core::CompileOptions compile_options;
  runtime::LoweringOptions lowering_options;

  bool has_program() const { return program_.has_value(); }
  core::Program& program();
  const core::Program& program() const;
  /// Moves the program out (the tablegen pass consumes it — it becomes the
  /// CompiledModel's program).
  core::Program TakeProgram();

  std::span<const float> train_inputs() const { return train_; }
  std::size_t num_samples() const { return num_samples_; }
  /// Replaces the training matrix (augmentation pass). The context takes
  /// ownership of the buffer.
  void ReplaceTrainInputs(std::vector<float> data, std::size_t num_samples);

  bool has_plan() const { return plan_.has_value(); }
  const core::QuantizationPlan& plan() const;
  /// Moves the plan out (the tablegen pass consumes it).
  core::QuantizationPlan TakePlan();
  void SetPlan(core::QuantizationPlan plan) { plan_ = std::move(plan); }

  bool has_compiled() const {
    return compiled_.has_value() || external_compiled_ != nullptr;
  }
  const core::CompiledModel& compiled() const;
  void SetCompiled(core::CompiledModel model);
  /// Moves the compiled model out (full-chain contexts only).
  core::CompiledModel TakeCompiled();

  bool has_lowered() const { return lowered_.has_value(); }
  const runtime::LoweredModel& lowered() const;
  void SetLowered(runtime::LoweredModel model);
  runtime::LoweredModel TakeLowered();

  /// Fusion totals for this context: `rewrites`/`iterations` accumulate
  /// across fusion passes; the before/after counts span from the first
  /// fusion pass's input program to the latest pass's output.
  core::FusionStats fusion_stats;

  const std::vector<PassStats>& history() const { return history_; }
  std::vector<PassStats>& mutable_history() { return history_; }

 private:
  std::optional<core::Program> program_;
  std::span<const float> train_;
  std::vector<float> owned_train_;
  std::size_t num_samples_ = 0;
  std::optional<core::QuantizationPlan> plan_;
  std::optional<core::CompiledModel> compiled_;
  const core::CompiledModel* external_compiled_ = nullptr;
  std::optional<runtime::LoweredModel> lowered_;
  std::vector<PassStats> history_;
};

/// One named compilation stage. Passes must be reusable across contexts
/// (Run is const) and throw std::logic_error when a prerequisite artifact
/// is missing from the context.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string_view name() const = 0;
  virtual void Run(CompilationContext& ctx, PassStats& stats) const = 0;
};

/// Ordered pass list. Run() executes every pass in order, timing each one
/// and appending its PassStats to the context history.
class PassManager {
 public:
  PassManager() = default;
  PassManager(PassManager&&) = default;
  PassManager& operator=(PassManager&&) = default;

  PassManager& Add(std::unique_ptr<Pass> pass);
  std::size_t NumPasses() const { return passes_.size(); }
  const std::vector<std::unique_ptr<Pass>>& passes() const { return passes_; }

  void Run(CompilationContext& ctx) const;

  /// fuse-basic only: program in, fused program out.
  static PassManager FusionPipeline();
  /// fuse-basic → augment → quantize-plan → tablegen: produces a
  /// CompiledModel (the sequence every model builder runs).
  static PassManager ModelPipeline();
  /// ModelPipeline + lower: produces a LoweredModel too.
  static PassManager SwitchPipeline();
  /// lower only: context seeded with an existing CompiledModel.
  static PassManager LoweringPipeline();

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

// Named pass factories. The four individual rewrite passes are exposed for
// custom pipelines / ablations; "fuse-basic" is their fixpoint and is what
// the standard pipelines use.
std::unique_ptr<Pass> MakeMergeMapsPass();             // "fuse-merge-maps"
std::unique_ptr<Pass> MakePushPartitionPass();         // "fuse-push-partition"
std::unique_ptr<Pass> MakeLinearReorderPass();         // "fuse-linear-reorder"
std::unique_ptr<Pass> MakeFlattenSumsPass();           // "fuse-flatten-sums"
std::unique_ptr<Pass> MakeFuseBasicPass();             // "fuse-basic"
std::unique_ptr<Pass> MakeAugmentPass();               // "augment"
std::unique_ptr<Pass> MakeQuantizationPass();          // "quantize-plan"
std::unique_ptr<Pass> MakeTableGenPass();              // "tablegen"
std::unique_ptr<Pass> MakeLoweringPass();              // "lower"

// ---------------------------------------------------------------------------
// One-call drivers (the API the model builders, benches and examples use).
// ---------------------------------------------------------------------------

struct CompileModelResult {
  core::CompiledModel model;
  core::FusionStats fusion;
  std::vector<PassStats> history;
};

/// Runs ModelPipeline() over `program` + training data.
CompileModelResult CompileToModel(core::Program program,
                                  std::span<const float> train_inputs,
                                  std::size_t num_samples,
                                  const core::CompileOptions& options = {});

struct CompileSwitchResult {
  core::CompiledModel model;
  runtime::LoweredModel lowered;
  core::FusionStats fusion;
  std::vector<PassStats> history;
};

/// Runs SwitchPipeline() over `program` + training data.
CompileSwitchResult CompileToSwitch(
    core::Program program, std::span<const float> train_inputs,
    std::size_t num_samples, const core::CompileOptions& options = {},
    const runtime::LoweringOptions& lowering = {});

/// Runs LoweringPipeline() over an existing CompiledModel. When `history`
/// is non-null the executed pass stats are appended to it.
runtime::LoweredModel PlaceOnSwitch(const core::CompiledModel& model,
                                    const runtime::LoweringOptions& options = {},
                                    std::vector<PassStats>* history = nullptr);

// ---------------------------------------------------------------------------
// Versioned compilation (the control plane's artifact format).
// ---------------------------------------------------------------------------

/// An immutable deployment artifact: the compiled tables, their placement on
/// the switch, the resource bill, and the knobs that produced them — the
/// unit control::ModelRegistry stores, control::UpdatePlanner diffs, and
/// StreamServer::SwapModel serves. `name`/`version` are zero/empty until
/// ModelRegistry::Publish stamps them; everything else never changes after
/// CompileVersioned returns (shared_ptr-to-const all the way down, so a
/// registry snapshot, a serving shard and a planner diff can hold the same
/// artifact concurrently without copies or locks).
struct VersionedModel {
  std::string name;
  std::uint64_t version = 0;
  std::shared_ptr<const core::CompiledModel> compiled;
  std::shared_ptr<const runtime::LoweredModel> lowered;
  /// Lowering knobs the artifact was placed with — required to reproduce
  /// the exact same placement when reloading from disk.
  runtime::LoweringOptions lowering;
  dataplane::ResourceReport report;
  core::FusionStats fusion;
  std::vector<PassStats> history;
};

/// Full-chain versioned compile: SwitchPipeline() over `program`, with the
/// compiled and lowered artifacts frozen behind shared const ownership.
VersionedModel CompileVersioned(core::Program program,
                                std::span<const float> train_inputs,
                                std::size_t num_samples,
                                const core::CompileOptions& options = {},
                                const runtime::LoweringOptions& lowering = {});

/// Wraps an already-compiled model (e.g. a trained models::* instance's
/// Compiled()) into a versioned artifact by lowering a private copy.
VersionedModel CompileVersioned(const core::CompiledModel& model,
                                const runtime::LoweringOptions& lowering = {});

/// Pretty-prints one line per executed pass (name, time, and the stats that
/// apply to it).
void PrintDiagnostics(std::ostream& os, std::span<const PassStats> history);

}  // namespace pegasus::compiler
