#!/usr/bin/env python3
"""Condense BENCH_*.json artifacts into CI comparison summaries.

Micro mode (default): reads the google-benchmark BENCH_micro.json, pairs
each BM_*TableLookup/<N> family with its *Linear counterpart, and writes a
compact comparison JSON (speedup per entry count, plus build provenance).

    compare_index_bench.py BENCH_micro.json [BENCH_index_compare.json]

Stream mode (--stream): reads bench_stream's BENCH_stream.json and writes
BENCH_swap.json summarizing the hot-swap rows — per config: swap latency,
throughput during the swap run, and the degradation ratio vs the no-swap
baseline row of the same (model, shards, threads) — and, when the artifact
carries "scaling_runs", the multi-ingest thread-scaling rows: aggregate
pps, scaling efficiency vs the 1x1 run, and the shed rate per config.
With a second stream file (a previous run's artifact), every throughput
row is also diffed across the two runs, so CI can chart serving-path
regressions.

    compare_index_bench.py --stream BENCH_stream.json \
        [--baseline OLD_BENCH_stream.json] [BENCH_swap.json]

Swap mode (--swap): everything --stream does, plus the O(delta) table
update sweep ("update_runs"): per (table_entries, patched_entries) point
the in-place ApplyDelta latency vs the rebuild+reseal latency, the
speedup, and the bytes the control plane would push. The sanity gate:
the patched table and the resealed table must decide the probe keys
identically (checksum_delta == checksum_reseal) on every row; a mismatch
fails the run — a delta that changes decisions is a correctness bug, not
a perf result.

    compare_index_bench.py --swap BENCH_stream.json \
        [--baseline OLD_BENCH_stream.json] [BENCH_swap.json]

Flowscale mode (--flowscale): reads bench_flowscale's BENCH_flowscale.json
and writes BENCH_flowscale_compare.json — per (live_flows, eviction) pair
the split vs interleaved layout speedup, plus the second-chance vs LRU
ratio for the split layout. The sanity gate: LRU rows of the two layouts
must report identical hit/miss/eviction counts (layout is physical, not
semantic); a mismatch fails the run.

    compare_index_bench.py --flowscale BENCH_flowscale.json \
        [BENCH_flowscale_compare.json]

Latency mode (--latency): reads the "latency_runs" section of
BENCH_stream.json (the off / disabled / sampled telemetry A/B that
bench_stream measures arm-interleaved, best-of-N) and writes
BENCH_latency_compare.json. The CI gate: telemetry compiled in but
disabled must cost < 2% throughput vs the no-telemetry baseline of the
same run. Because the arms are same-run measurements on a shared machine,
the gate uses max(disabled, sampled)/off — the sampled arm does strictly
more work than the disabled arm, so if EITHER ratio clears the bar the
true disabled overhead is within it, and a single noisy arm cannot fail
the build. Also prints the sampled-mode latency quantiles for the log.

    compare_index_bench.py --latency BENCH_stream.json \
        [BENCH_latency_compare.json] [--max-regression 0.02]
"""
import argparse
import json
import sys


def micro_mode(src: str, dst: str) -> int:
    with open(src) as f:
        data = json.load(f)

    times = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        times[b["name"]] = b["real_time"]  # ns (default time_unit)

    rows = []
    for name, t_indexed in sorted(times.items()):
        if "Linear" in name:
            continue
        base, _, arg = name.partition("/")
        linear = f"{base}Linear/{arg}" if arg else f"{base}Linear"
        if linear not in times:
            continue
        t_linear = times[linear]
        rows.append({
            "family": base.removeprefix("BM_"),
            "entries": int(arg) if arg else None,
            "indexed_ns": round(t_indexed, 2),
            "linear_ns": round(t_linear, 2),
            "speedup": round(t_linear / t_indexed, 2) if t_indexed else None,
        })

    context = data.get("context", {})
    out = {
        "bench": "index_compare",
        "build_type": context.get("build_type", "unknown"),
        "git_sha": context.get("git_sha", "unknown"),
        "library_build_type": context.get("library_build_type", "unknown"),
        "comparisons": rows,
    }
    with open(dst, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")

    for r in rows:
        print(f"{r['family']}/{r['entries']}: indexed {r['indexed_ns']} ns "
              f"vs linear {r['linear_ns']} ns -> {r['speedup']}x")
    if not rows:
        print("warning: no indexed/linear benchmark pairs found",
              file=sys.stderr)
        return 1
    return 0


def _run_key(row: dict) -> tuple:
    return (row.get("model"), row.get("feature"), row.get("shards"),
            row.get("threads"))


def stream_mode(src: str, baseline: str, dst: str,
                with_updates: bool = False) -> int:
    with open(src) as f:
        data = json.load(f)

    swaps = []
    for r in data.get("swap_runs", []):
        base_pps = r.get("baseline_packets_per_sec") or 0.0
        pps = r.get("packets_per_sec") or 0.0
        swaps.append({
            "model": r.get("model"),
            "shards": r.get("shards"),
            "threads": r.get("threads"),
            "swaps": r.get("swaps"),
            "swap_latency_ms": r.get("swap_latency_ms"),
            "packets_per_sec": pps,
            "baseline_packets_per_sec": base_pps,
            "throughput_during_swap_ratio":
                round(pps / base_pps, 3) if base_pps else None,
        })

    scaling = []
    for r in data.get("scaling_runs", []):
        offered = r.get("offered") or 0
        shed = (r.get("shed_ring_full") or 0) + (r.get("shed_misrouted") or 0)
        scaling.append({
            "ingest": r.get("ingest"),
            "shards": r.get("shards"),
            "pin_policy": r.get("pin_policy"),
            "shed_enabled": r.get("shed"),
            "packets_per_sec": r.get("packets_per_sec"),
            "scaling_efficiency": r.get("scaling_efficiency"),
            "shed_rate": round(shed / offered, 6) if offered else 0.0,
            "shed_ring_full": r.get("shed_ring_full"),
            "shed_misrouted": r.get("shed_misrouted"),
        })

    updates = []
    update_mismatches = []
    if with_updates:
        for r in data.get("update_runs", []):
            row = {
                "table_entries": r.get("table_entries"),
                "patched_entries": r.get("patched_entries"),
                "delta_ms": r.get("delta_ms"),
                "reseal_ms": r.get("reseal_ms"),
                "speedup": r.get("speedup"),
                "bytes_pushed": r.get("bytes_pushed"),
                "decisions_match":
                    r.get("checksum_delta") == r.get("checksum_reseal"),
            }
            updates.append(row)
            if not row["decisions_match"]:
                update_mismatches.append(
                    f"table_entries={row['table_entries']} "
                    f"patched_entries={row['patched_entries']}: "
                    f"checksum_delta={r.get('checksum_delta')} != "
                    f"checksum_reseal={r.get('checksum_reseal')}")

    out = {
        "bench": "swap",
        "build_type": data.get("build_type", "unknown"),
        "git_sha": data.get("git_sha", "unknown"),
        "dataset": data.get("dataset", "unknown"),
        "swap_runs": swaps,
        "scaling_runs": scaling,
    }
    if with_updates:
        out["update_runs"] = updates
        out["update_decision_mismatches"] = update_mismatches

    if baseline:
        with open(baseline) as f:
            prev = json.load(f)
        prev_runs = {_run_key(r): r for r in prev.get("runs", [])}
        diffs = []
        for r in data.get("runs", []):
            old = prev_runs.get(_run_key(r))
            if old is None:
                continue
            pps_new = r.get("packets_per_sec") or 0.0
            pps_old = old.get("packets_per_sec") or 0.0
            diffs.append({
                "model": r.get("model"),
                "feature": r.get("feature"),
                "shards": r.get("shards"),
                "threads": r.get("threads"),
                "packets_per_sec": pps_new,
                "baseline_packets_per_sec": pps_old,
                "speedup_vs_baseline":
                    round(pps_new / pps_old, 3) if pps_old else None,
            })
        out["run_diffs"] = diffs
        out["baseline_git_sha"] = prev.get("git_sha", "unknown")
        out["baseline_build_type"] = prev.get("build_type", "unknown")

    with open(dst, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")

    for s in swaps:
        ratio = s["throughput_during_swap_ratio"]
        print(f"{s['model']} shards={s['shards']} threads={s['threads']}: "
              f"swap gap {s['swap_latency_ms']} ms, "
              f"{s['packets_per_sec']:.0f} pps during swap "
              f"({ratio if ratio is not None else '?'}x of no-swap)")
    for s in scaling:
        eff = s["scaling_efficiency"]
        print(f"scaling ingest={s['ingest']} shards={s['shards']}"
              f" pin={s['pin_policy'] or 'none'}"
              f"{' shed' if s['shed_enabled'] else ''}: "
              f"{s['packets_per_sec']:.0f} pps, "
              f"efficiency {eff if eff is not None else '?'}, "
              f"shed rate {s['shed_rate']}")
    for d in out.get("run_diffs", []):
        print(f"{d['model']}/{d['feature']} shards={d['shards']} "
              f"threads={d['threads']}: {d['packets_per_sec']:.0f} pps "
              f"vs baseline {d['baseline_packets_per_sec']:.0f} "
              f"-> {d['speedup_vs_baseline']}x")
    for u in updates:
        print(f"update n={u['table_entries']} patched={u['patched_entries']}: "
              f"delta {u['delta_ms']} ms vs reseal {u['reseal_ms']} ms "
              f"-> {u['speedup']}x, {u['bytes_pushed']} bytes pushed"
              f"{'' if u['decisions_match'] else '  [DECISION MISMATCH]'}")
    for m in update_mismatches:
        print(f"error: delta/reseal decision mismatch: {m}", file=sys.stderr)
    if not swaps:
        print("warning: no swap_runs found in the stream artifact",
              file=sys.stderr)
        return 1
    if with_updates and not updates:
        print("warning: no update_runs found in the stream artifact",
              file=sys.stderr)
        return 1
    return 1 if update_mismatches else 0


def flowscale_mode(src: str, dst: str) -> int:
    with open(src) as f:
        data = json.load(f)

    by_point = {}  # live_flows -> {(layout, eviction): row}
    for r in data.get("runs", []):
        by_point.setdefault(r["live_flows"], {})[
            (r.get("layout"), r.get("eviction"))] = r

    rows = []
    mismatches = []
    for live in sorted(by_point):
        point = by_point[live]
        split = point.get(("split", "lru"))
        inter = point.get(("interleaved", "lru"))
        clock = point.get(("split", "second_chance"))
        if split is None or inter is None:
            continue
        # Layout is a physical choice: the LRU rows must agree on every
        # semantic counter, or the A/B is comparing different workloads.
        for key in ("hits", "misses", "evictions", "probe_hist"):
            if split.get(key) != inter.get(key):
                mismatches.append(f"live_flows={live}: {key} differs "
                                  f"({split.get(key)} vs {inter.get(key)})")
        split_pps = split.get("packets_per_sec") or 0.0
        inter_pps = inter.get("packets_per_sec") or 0.0
        rows.append({
            "live_flows": live,
            "split_packets_per_sec": split_pps,
            "interleaved_packets_per_sec": inter_pps,
            "split_speedup": round(split_pps / inter_pps, 3)
                             if inter_pps else None,
            "second_chance_packets_per_sec":
                clock.get("packets_per_sec") if clock else None,
            "second_chance_vs_lru":
                round((clock.get("packets_per_sec") or 0.0) / split_pps, 3)
                if clock and split_pps else None,
            "hit_rate": split.get("hit_rate"),
            "load_factor": split.get("load_factor"),
            "mean_probe": split.get("mean_probe"),
            "evictions": split.get("evictions"),
        })

    out = {
        "bench": "flowscale_compare",
        "build_type": data.get("build_type", "unknown"),
        "git_sha": data.get("git_sha", "unknown"),
        "comparisons": rows,
        "layout_counter_mismatches": mismatches,
    }
    with open(dst, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")

    for r in rows:
        print(f"live={r['live_flows']}: split {r['split_packets_per_sec']:.0f}"
              f" vs interleaved {r['interleaved_packets_per_sec']:.0f} pps"
              f" -> {r['split_speedup']}x (load {r['load_factor']},"
              f" probe {r['mean_probe']},"
              f" second-chance {r['second_chance_vs_lru']}x)")
    for m in mismatches:
        print(f"error: layout counter mismatch: {m}", file=sys.stderr)
    if not rows:
        print("warning: no split/interleaved row pairs found",
              file=sys.stderr)
        return 1
    return 1 if mismatches else 0


def latency_mode(src: str, dst: str, max_regression: float) -> int:
    with open(src) as f:
        data = json.load(f)

    arms = {r.get("mode"): r for r in data.get("latency_runs", [])}
    off = arms.get("off")
    disabled = arms.get("disabled")
    sampled = arms.get("sampled")
    if off is None or disabled is None:
        print("error: latency_runs must contain 'off' and 'disabled' arms "
              "(rebuild bench_stream?)", file=sys.stderr)
        return 1

    off_pps = off.get("packets_per_sec") or 0.0
    ratios = {}
    for name, arm in (("disabled", disabled), ("sampled", sampled)):
        if arm is None:
            continue
        pps = arm.get("packets_per_sec") or 0.0
        ratios[name] = round(pps / off_pps, 4) if off_pps else None

    # The gate (see module docstring): sampled work strictly contains
    # disabled work, so the max of the two ratios is the noise-robust
    # estimate of the disabled arm's cost.
    gate_ratio = max(v for v in ratios.values() if v is not None)
    floor = 1.0 - max_regression
    passed = gate_ratio >= floor

    out = {
        "bench": "latency_compare",
        "build_type": data.get("build_type", "unknown"),
        "git_sha": data.get("git_sha", "unknown"),
        "dataset": data.get("dataset", "unknown"),
        "off_packets_per_sec": off_pps,
        "ratios_vs_off": ratios,
        "gate_ratio": gate_ratio,
        "max_regression": max_regression,
        "passed": passed,
        "sampled_latency": None if sampled is None else {
            "sample_every": sampled.get("sample_every"),
            "p50_ns": sampled.get("latency_p50_ns"),
            "p99_ns": sampled.get("latency_p99_ns"),
            "p999_ns": sampled.get("latency_p999_ns"),
        },
    }
    with open(dst, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")

    print(f"telemetry off: {off_pps:.0f} pps")
    for name, ratio in ratios.items():
        pps = arms[name].get("packets_per_sec") or 0.0
        print(f"telemetry {name}: {pps:.0f} pps ({ratio}x of off)")
    if sampled is not None:
        print(f"sampled (1-in-{sampled.get('sample_every')}) e2e latency: "
              f"p50 {sampled.get('latency_p50_ns', 0) / 1e3:.1f} us, "
              f"p99 {sampled.get('latency_p99_ns', 0) / 1e3:.1f} us, "
              f"p999 {sampled.get('latency_p999_ns', 0) / 1e3:.1f} us")
    if not passed:
        print(f"error: disabled-telemetry throughput ratio {gate_ratio} "
              f"below the {floor} gate — compiled-in telemetry costs more "
              f"than {max_regression:.0%} with sampling off",
              file=sys.stderr)
        return 1
    print(f"gate: {gate_ratio} >= {floor} ok")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("src", help="BENCH_micro.json or BENCH_stream.json")
    parser.add_argument("dst", nargs="?", default=None,
                        help="output JSON (defaults per mode)")
    parser.add_argument("--stream", action="store_true",
                        help="summarize BENCH_stream.json -> BENCH_swap.json")
    parser.add_argument("--swap", action="store_true",
                        help="like --stream, plus the O(delta) update sweep "
                             "(fails on delta/reseal decision mismatch)")
    parser.add_argument("--flowscale", action="store_true",
                        help="summarize BENCH_flowscale.json -> "
                             "BENCH_flowscale_compare.json")
    parser.add_argument("--baseline", default=None,
                        help="previous BENCH_stream.json to diff against "
                             "(stream mode)")
    parser.add_argument("--latency", action="store_true",
                        help="gate the off/disabled/sampled telemetry A/B "
                             "in BENCH_stream.json -> "
                             "BENCH_latency_compare.json")
    parser.add_argument("--max-regression", type=float, default=0.02,
                        help="allowed disabled-telemetry throughput loss "
                             "(latency mode, default 0.02)")
    args = parser.parse_args()

    if args.latency:
        return latency_mode(args.src,
                            args.dst or "BENCH_latency_compare.json",
                            args.max_regression)
    if args.stream or args.swap:
        return stream_mode(args.src, args.baseline,
                           args.dst or "BENCH_swap.json",
                           with_updates=args.swap)
    if args.flowscale:
        return flowscale_mode(args.src,
                              args.dst or "BENCH_flowscale_compare.json")
    return micro_mode(args.src, args.dst or "BENCH_index_compare.json")


if __name__ == "__main__":
    sys.exit(main())
