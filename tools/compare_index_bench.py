#!/usr/bin/env python3
"""Summarize indexed-vs-linear lookup families from BENCH_micro.json.

Reads the google-benchmark JSON artifact, pairs each BM_*TableLookup/<N>
family with its *Linear counterpart, and writes a compact comparison JSON
(speedup per entry count, plus build provenance) for the CI bench artifact.

Usage: compare_index_bench.py BENCH_micro.json [BENCH_index_compare.json]
"""
import json
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    src = sys.argv[1]
    dst = sys.argv[2] if len(sys.argv) > 2 else "BENCH_index_compare.json"
    with open(src) as f:
        data = json.load(f)

    times = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        times[b["name"]] = b["real_time"]  # ns (default time_unit)

    rows = []
    for name, t_indexed in sorted(times.items()):
        if "Linear" in name:
            continue
        base, _, arg = name.partition("/")
        linear = f"{base}Linear/{arg}" if arg else f"{base}Linear"
        if linear not in times:
            continue
        t_linear = times[linear]
        rows.append({
            "family": base.removeprefix("BM_"),
            "entries": int(arg) if arg else None,
            "indexed_ns": round(t_indexed, 2),
            "linear_ns": round(t_linear, 2),
            "speedup": round(t_linear / t_indexed, 2) if t_indexed else None,
        })

    context = data.get("context", {})
    out = {
        "bench": "index_compare",
        "build_type": context.get("build_type", "unknown"),
        "git_sha": context.get("git_sha", "unknown"),
        "library_build_type": context.get("library_build_type", "unknown"),
        "comparisons": rows,
    }
    with open(dst, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")

    for r in rows:
        print(f"{r['family']}/{r['entries']}: indexed {r['indexed_ns']} ns "
              f"vs linear {r['linear_ns']} ns -> {r['speedup']}x")
    if not rows:
        print("warning: no indexed/linear benchmark pairs found",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
