// libFuzzer target for WireParser (build with -DPEGASUS_FUZZERS=ON, which
// requires a clang toolchain: -fsanitize=fuzzer).
//
//   ./fuzz_wire tests/corpus/wire   # fuzz single frames from the seeds
//
// Crashing inputs should be minimized and checked in under
// tests/corpus/wire/ so test_fuzz_io replays them forever after.
#include <cstddef>
#include <cstdint>
#include <span>

#include "../tests/fuzz_harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  pegasus::fuzz::FuzzWire(std::span<const std::uint8_t>(data, size));
  return 0;
}
