// Generates a small self-hosting capture fixture: synthetic dataset ->
// pcap (io::WriteDatasetPcap) -> re-import -> verify the round trip is
// bit-identical. Exit status is the verification result, so the cmake
// `fixture_pcap` target doubles as the CI round-trip smoke.
//
//   make_fixture_pcap OUT.pcap [flows_per_class]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "io/assemble.hpp"
#include "traffic/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace pegasus;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s OUT.pcap [flows_per_class]\n", argv[0]);
    return 2;
  }
  const std::string out_path = argv[1];
  const std::size_t flows_per_class =
      argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 12;

  const auto ds = traffic::Generate(traffic::PeerRushSpec(flows_per_class));
  const auto records = io::WriteDatasetPcap(out_path, ds);
  std::size_t packets = 0;
  for (const auto& f : ds.flows) packets += f.packets.size();
  std::printf("%s: %zu flows, %zu packets, %llu records\n", out_path.c_str(),
              ds.flows.size(), packets,
              static_cast<unsigned long long>(records));

  // ---- round-trip verification -------------------------------------------
  const auto imported =
      io::ReadDatasetPcap(out_path, io::ImportOptionsFor(ds));

  const auto& back = imported.dataset;
  auto fail = [](const char* what) {
    std::fprintf(stderr, "round-trip mismatch: %s\n", what);
    return 1;
  };
  if (imported.parse.parsed != imported.parse.frames) {
    return fail("parser dropped frames");
  }
  if (back.flows.size() != ds.flows.size()) return fail("flow count");
  for (std::size_t i = 0; i < ds.flows.size(); ++i) {
    const auto& a = ds.flows[i];
    const auto& b = back.flows[i];
    if (!(a.key == b.key) || !(a.tuple == b.tuple) || a.label != b.label) {
      return fail("flow identity");
    }
    if (a.packets.size() != b.packets.size()) return fail("packet count");
    for (std::size_t p = 0; p < a.packets.size(); ++p) {
      if (a.packets[p].ts_us != b.packets[p].ts_us ||
          a.packets[p].len != b.packets[p].len ||
          a.packets[p].bytes != b.packets[p].bytes) {
        return fail("packet contents");
      }
    }
  }
  std::printf("round trip: bit-identical (%llu flows assembled, "
              "%llu reordered)\n",
              static_cast<unsigned long long>(imported.assemble.flows),
              static_cast<unsigned long long>(imported.assemble.reordered));
  return 0;
}
