// libFuzzer target for PcapReader (build with -DPEGASUS_FUZZERS=ON, which
// requires a clang toolchain: -fsanitize=fuzzer).
//
//   ./fuzz_pcap tests/corpus/pcap   # fuzz from the checked-in seeds
//
// Crashing inputs should be minimized (-minimize_crash=1) and checked in
// under tests/corpus/pcap/ so test_fuzz_io replays them forever after.
#include <cstddef>
#include <cstdint>
#include <span>

#include "../tests/fuzz_harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  pegasus::fuzz::FuzzPcap(std::span<const std::uint8_t>(data, size));
  return 0;
}
