#!/usr/bin/env python3
"""Convert a pegasus flight-recorder dump to Chrome trace-event JSON.

Input: the JSON written by StreamServer::WriteTrace() /
telemetry::WriteTraceJson():

    {"clock": "steady_ns_since_telemetry_start",
     "events": [{"seq": 1, "ts_ns": 1234, "dur_ns": 56, "kind": "packet_span",
                 "shard": 0, "a": ..., "b": ...}, ...]}

Output: the Chrome trace-event array format, loadable in Perfetto
(https://ui.perfetto.dev) or chrome://tracing. Each shard becomes a thread
track under one "pegasus" process; control-plane events (shard -1: swap
begin/publish, delta apply, stall/clear) land on a dedicated "control"
track. Events with a duration (packet_span, batch_flush, swap_apply)
become complete events ("X"); lifecycle markers become instants ("i").

Usage:
    tools/trace_to_chrome.py trace.json -o chrome_trace.json
    build/bench_stream --trace-out - | tools/trace_to_chrome.py - -o out.json
"""

from __future__ import annotations

import argparse
import json
import sys

# kinds whose dur_ns is meaningful -> rendered as spans.
SPAN_KINDS = {"packet_span", "batch_flush", "swap_apply", "delta_apply"}

# Pleasant fixed colors per kind (Chrome trace color names).
COLOR = {
    "packet_span": "thread_state_running",
    "batch_flush": "thread_state_iowait",
    "swap_begin": "vsync_highlight_color",
    "swap_apply": "detailed_memory_dump",
    "swap_publish": "good",
    "swap_rollback": "terrible",
    "delta_apply": "startup",
    "shed": "bad",
    "stall": "terrible",
    "stall_clear": "good",
}

# args payload interpretation per kind: (name_for_a, name_for_b).
ARG_NAMES = {
    "packet_span": ("flow_digest", "model_version"),
    "batch_flush": ("batch_size", "model_version"),
    "swap_begin": ("version", "mode"),
    "swap_apply": ("gap_ns", "version"),
    "swap_publish": ("version", "shards"),
    "swap_rollback": ("version", "shard"),
    "delta_apply": ("version", "patch_bytes"),
    "shed": ("count", "reason"),
    "stall": ("shard", "heartbeat"),
    "stall_clear": ("shard", "heartbeat"),
}

SHED_REASON = {0: "ring_full", 1: "misrouted", 2: "inference"}

PID = 1
CONTROL_TID = 0  # shard s -> tid s + 1


def tid_of(shard: int) -> int:
    return CONTROL_TID if shard < 0 else shard + 1


def convert(dump: dict) -> list[dict]:
    out: list[dict] = [
        {"ph": "M", "pid": PID, "name": "process_name",
         "args": {"name": "pegasus"}},
        {"ph": "M", "pid": PID, "tid": CONTROL_TID, "name": "thread_name",
         "args": {"name": "control"}},
    ]
    named_shards: set[int] = set()
    for ev in dump.get("events", []):
        kind = ev["kind"]
        shard = ev.get("shard", -1)
        tid = tid_of(shard)
        if shard >= 0 and shard not in named_shards:
            named_shards.add(shard)
            out.append({"ph": "M", "pid": PID, "tid": tid,
                        "name": "thread_name",
                        "args": {"name": f"shard {shard}"}})

        a_name, b_name = ARG_NAMES.get(kind, ("a", "b"))
        args = {a_name: ev.get("a", 0), b_name: ev.get("b", 0),
                "seq": ev.get("seq", 0)}
        if kind == "shed":
            args["reason"] = SHED_REASON.get(ev.get("b", 0), "unknown")

        ts_us = ev["ts_ns"] / 1000.0
        rec = {"name": kind, "pid": PID, "tid": tid, "ts": ts_us,
               "cat": "pegasus", "args": args}
        if kind in COLOR:
            rec["cname"] = COLOR[kind]
        if kind in SPAN_KINDS and ev.get("dur_ns", 0) > 0:
            rec["ph"] = "X"
            rec["dur"] = ev["dur_ns"] / 1000.0
        else:
            rec["ph"] = "i"
            # Swap lifecycle is process-wide; per-shard markers stay local.
            rec["s"] = "p" if shard < 0 else "t"
        out.append(rec)
    return out


def main() -> int:
    ap = argparse.ArgumentParser(
        description="pegasus flight-recorder dump -> Chrome trace JSON")
    ap.add_argument("input", help="trace dump JSON ('-' for stdin)")
    ap.add_argument("-o", "--output", default="-",
                    help="output path ('-' for stdout)")
    args = ap.parse_args()

    raw = sys.stdin.read() if args.input == "-" else open(args.input).read()
    dump = json.loads(raw)
    if "events" not in dump:
        print("error: input has no 'events' array — not a pegasus trace "
              "dump?", file=sys.stderr)
        return 1

    events = convert(dump)
    text = json.dumps({"traceEvents": events,
                       "displayTimeUnit": "ns",
                       "metadata": {"clock": dump.get("clock", "unknown")}},
                      indent=None, separators=(",", ":"))
    if args.output == "-":
        sys.stdout.write(text + "\n")
    else:
        with open(args.output, "w") as f:
            f.write(text + "\n")
        n_spans = sum(1 for e in events if e.get("ph") == "X")
        n_inst = sum(1 for e in events if e.get("ph") == "i")
        print(f"wrote {args.output}: {n_spans} spans, {n_inst} instants "
              f"across {len({e['tid'] for e in events if 'tid' in e})} "
              f"tracks",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
