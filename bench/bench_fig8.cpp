// Reproduces Figure 8: ROC curves / AUC of the Pegasus AutoEncoder
// detecting unknown attack traffic on each dataset.
//
// Protocol (§7.4): the AE trains on the *benign training set only*; the
// test set is benign test traffic with attack flows injected at a 1:4
// attack-to-benign ratio; scores are dataplane (fuzzy) MAE reconstruction
// errors. Six attacks: Htbot, Flood (SSDP reflection), Cridex, Virut,
// Neris, Geodo.
//
// Expected shape: Flood/Cridex near-perfect everywhere; Htbot/Virut/Geodo
// subtler; CICIOT (noisiest benign manifold) hardest.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace pegasus::bench;
  namespace md = pegasus::models;
  namespace ev = pegasus::eval;
  namespace tr = pegasus::traffic;

  const BenchScale scale = ScaleFromEnv();
  auto data = PrepareAll(scale, /*with_raw_bytes=*/false);
  const auto attacks = tr::AttackProfiles();

  std::printf("Figure 8: AutoEncoder unknown-attack detection (AUC)\n");
  std::printf("%-10s", "Attack");
  for (const auto& d : data) std::printf(" %10s", d.name.c_str());
  std::printf("\n");

  std::vector<std::vector<double>> aucs(attacks.size(),
                                        std::vector<double>(data.size()));
  for (std::size_t di = 0; di < data.size(); ++di) {
    auto& prep = data[di];
    std::fprintf(stderr, "[fig8] training AE on %s benign traffic...\n",
                 prep.name.c_str());
    md::AutoencoderConfig cfg;
    cfg.epochs = scale.epochs_ae;
    auto model = md::Autoencoder::Train(prep.seq.train.x,
                                        prep.seq.train.size(),
                                        prep.seq.train.dim, cfg);
    // Benign test scores once.
    const auto& test = prep.seq.test;
    std::vector<float> benign_scores(test.size());
    for (std::size_t i = 0; i < test.size(); ++i) {
      benign_scores[i] = model->ScoreFuzzy(
          std::span<const float>(test.x.data() + i * test.dim, test.dim));
    }
    for (std::size_t ai = 0; ai < attacks.size(); ++ai) {
      // 1:4 attack-to-benign ratio by sample count.
      const std::size_t want_attack_samples =
          std::max<std::size_t>(benign_scores.size() / 4, 8);
      auto flows = tr::GenerateFlows(attacks[ai],
                                     want_attack_samples / 4 + 4, -1, 24, 64,
                                     900 + ai);
      const auto atk = tr::ExtractSeqFeatures(flows);
      std::vector<float> scores = benign_scores;
      std::vector<bool> is_attack(benign_scores.size(), false);
      for (std::size_t i = 0;
           i < std::min(atk.size(), want_attack_samples); ++i) {
        scores.push_back(model->ScoreFuzzy(std::span<const float>(
            atk.x.data() + i * atk.dim, atk.dim)));
        is_attack.push_back(true);
      }
      aucs[ai][di] = ev::ComputeRoc(scores, is_attack).auc;
    }
  }
  for (std::size_t ai = 0; ai < attacks.size(); ++ai) {
    std::printf("%-10s", attacks[ai].name.c_str());
    for (double a : aucs[ai]) std::printf(" %10.4f", a);
    std::printf("\n");
  }
  std::printf("\n(paper AUCs — PeerRush: Htbot .896 Flood .999 Cridex .999 "
              "Virut .924 Neris .940 Geodo .940; CICIOT: .856/.991/.942/"
              ".861/.858/.855; ISCXVPN: .993/.987/.991/.990/.990/.988)\n");
  return 0;
}
