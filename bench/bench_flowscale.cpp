// Flow-state scaling benchmark: the FlowTable under churn at 10K → 1M live
// flows — the memory-system story (5GC²ache: LLC behavior, not instruction
// count, governs per-packet serving cost at scale), measured end-to-end
// through the serving path rather than in a table microbenchmark.
//
// Each sweep point streams a deterministic ChurnGenerator scenario
// (elephants + mice with steady retire/replace churn, periodic port-scan
// and SYN-flood bursts of never-repeating flows) through a single-shard
// single-threaded StreamServer on the MLP-B stat path, so the only thing
// that changes across rows at one live-flow count is the FlowTable
// configuration:
//
//   split + lru           — the default split-lane layout (hot 16-byte
//                           metadata lane probed separately from the cold
//                           per-flow state lane);
//   interleaved + lru     — the pre-split baseline (metadata and value in
//                           one slot: every probe step drags a cold line);
//   split + second_chance — the CLOCK-style eviction alternative.
//
// Identical spec -> bit-identical packet sequence, so layout rows at one
// point are directly comparable. Per-row hit rate, evictions, load factor
// and the probe-length histogram land in BENCH_flowscale.json (argv[1]
// overrides the path); tools/compare_index_bench.py --flowscale folds the
// layout A/B into speedup rows. The acceptance signal: split-lane pps >=
// interleaved pps from 256K live flows up, where the metadata lane still
// fits in LLC but the interleaved slot array long since does not.
//
// PEGASUS_BENCH_SCALE=small caps the sweep at 64K live flows for CI; the
// full sweep reaches 1M.
#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "compiler/compiler.hpp"
#include "eval/experiment.hpp"
#include "runtime/stream_server.hpp"
#include "traffic/synthetic.hpp"

namespace {

namespace ev = pegasus::eval;
namespace rt = pegasus::runtime;
namespace tr = pegasus::traffic;

struct FlowScaleRow {
  std::size_t live_flows = 0;
  std::string layout;
  std::string eviction;
  std::size_t table_slots = 0;
  std::uint64_t packets = 0;
  std::uint64_t decisions = 0;
  std::uint64_t warmup = 0;
  std::uint64_t flows_started = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t flows_resident = 0;
  double hit_rate = 0.0;
  double load_factor = 0.0;
  double mean_probe = 0.0;
  std::array<std::uint64_t, rt::FlowTableStats::kProbeHistBuckets> probe_hist{};
  double wall_ms = 0.0;
  double pps = 0.0;
};

FlowScaleRow RunPoint(std::shared_ptr<const rt::LoweredModel> model,
                      std::size_t live_flows, std::size_t packets,
                      rt::FlowTableLayout layout,
                      rt::FlowTableEviction eviction, int reps) {
  // The run is deterministic (same spec -> same packets -> same table
  // decisions), so only the wall clock varies across reps; keep the
  // fastest rep, which is the one least perturbed by the host.
  ev::StreamRun run{};
  std::uint64_t flows_started = 0;
  for (int rep = 0; rep < reps; ++rep) {
    tr::ChurnSpec spec;
    spec.live_flows = live_flows;
    spec.packets = packets;
    tr::ChurnGenerator gen(spec);

    rt::StreamServerOptions opts;
    opts.num_shards = 1;
    // Provisioned at the live working set: the never-emptied table
    // saturates as retired mice and burst corpses accumulate (exactly how
    // a hardware flow cache runs), so probes walk past dead slots and
    // eviction is continuous — the regime where layout and eviction policy
    // matter.
    opts.flows_per_shard = live_flows;
    opts.feature = rt::FeatureKind::kStat;
    opts.table_layout = layout;
    opts.table_eviction = eviction;
    rt::StreamServer server(model, opts, 1);
    auto r = ev::ServeChurn(server, gen);
    flows_started = gen.flows_started();
    if (rep == 0 || r.packets_per_sec > run.packets_per_sec) {
      run = std::move(r);
    }
  }

  FlowScaleRow row;
  row.live_flows = live_flows;
  row.layout = rt::FlowTableLayoutName(layout);
  row.eviction = rt::FlowTableEvictionName(eviction);
  row.table_slots = run.stats.table.slots;
  row.packets = run.stats.packets;
  row.decisions = run.stats.decisions;
  row.warmup = run.stats.warmup;
  row.flows_started = flows_started;
  row.hits = run.stats.table.hits;
  row.misses = run.stats.table.misses;
  row.inserts = run.stats.table.inserts;
  row.evictions = run.stats.table.evictions;
  row.flows_resident = run.stats.flows_resident;
  const std::uint64_t ops = row.hits + row.misses;
  row.hit_rate = ops ? static_cast<double>(row.hits) /
                           static_cast<double>(ops)
                     : 0.0;
  row.load_factor = run.stats.table.LoadFactor();
  row.mean_probe = run.stats.table.MeanProbe();
  row.probe_hist = run.stats.table.probe_hist;
  row.wall_ms = run.wall_ms;
  row.pps = run.packets_per_sec;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pegasus;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_flowscale.json";
  const bench::BenchScale scale = bench::ScaleFromEnv();
  const bool small = scale.peerrush_flows < 150;

  // The model is incidental here (the table is the subject); a quickly
  // trained MLP-B on the stat path keeps per-packet inference cost
  // realistic without dominating the run.
  auto prep = eval::Prepare(traffic::PeerRushSpec(scale.peerrush_flows),
                            /*with_raw_bytes=*/false);
  models::MlpBConfig mlp_cfg;
  mlp_cfg.epochs = scale.epochs_small;
  auto mlp = models::MlpB::Train(prep.stat.train.x, prep.stat.train.labels,
                                 prep.stat.train.size(), prep.stat.train.dim,
                                 prep.num_classes, mlp_cfg);
  runtime::LoweringOptions lopts;
  lopts.stateful_bits_per_flow =
      runtime::OnlineFlowStateSpec(runtime::FeatureKind::kStat).BitsPerFlow();
  auto lowered = std::make_shared<const runtime::LoweredModel>(
      compiler::PlaceOnSwitch(mlp->Compiled(), lopts));

  std::vector<std::size_t> sweep = {10'000, 65'536};
  if (!small) {
    sweep.push_back(262'144);
    sweep.push_back(1'048'576);
  }

  struct Config {
    runtime::FlowTableLayout layout;
    runtime::FlowTableEviction eviction;
  };
  const Config configs[] = {
      {runtime::FlowTableLayout::kSplit, runtime::FlowTableEviction::kLru},
      {runtime::FlowTableLayout::kInterleaved,
       runtime::FlowTableEviction::kLru},
      {runtime::FlowTableLayout::kSplit,
       runtime::FlowTableEviction::kSecondChance},
  };

  std::vector<FlowScaleRow> rows;
  std::printf("%9s %-12s %-13s %10s %10s %9s %8s %7s %10s %12s\n", "live",
              "layout", "eviction", "packets", "evictions", "hit rate",
              "load", "probe", "wall ms", "pkts/s");
  // Best-of-N damps host noise and the first-row cold-start (the very
  // first run also pays page-in and branch-predictor warm-up).
  const int reps = small ? 2 : 3;
  for (const std::size_t live : sweep) {
    // Enough packets to drive the table to saturation (load ~1.0, probes
    // at steady state) well past warm-up; the small CI pass stays quick.
    const std::size_t packets =
        small ? std::max<std::size_t>(100'000, live)
              : std::max<std::size_t>(500'000, 4 * live);
    for (const Config& c : configs) {
      const auto row =
          RunPoint(lowered, live, packets, c.layout, c.eviction, reps);
      std::printf("%9zu %-12s %-13s %10llu %10llu %9.4f %8.3f %7.2f %10.1f "
                  "%12.0f\n",
                  row.live_flows, row.layout.c_str(), row.eviction.c_str(),
                  static_cast<unsigned long long>(row.packets),
                  static_cast<unsigned long long>(row.evictions),
                  row.hit_rate, row.load_factor, row.mean_probe, row.wall_ms,
                  row.pps);
      rows.push_back(row);
    }
  }

  // Headline: split vs interleaved speedup per sweep point (both LRU).
  std::printf("\nsplit-lane speedup vs interleaved (lru):\n");
  for (const std::size_t live : sweep) {
    double split_pps = 0.0, inter_pps = 0.0;
    for (const auto& r : rows) {
      if (r.live_flows != live || r.eviction != "lru") continue;
      (r.layout == "split" ? split_pps : inter_pps) = r.pps;
    }
    std::printf("  %9zu live: %.3fx\n", live,
                inter_pps > 0.0 ? split_pps / inter_pps : 0.0);
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"flowscale\",\n  \"build_type\": \"%s\",\n"
               "  \"git_sha\": \"%s\",\n  \"runs\": [\n",
               bench::BuildType(), bench::GitSha());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const FlowScaleRow& r = rows[i];
    std::string hist = "[";
    for (std::size_t b = 0; b < r.probe_hist.size(); ++b) {
      hist += std::to_string(r.probe_hist[b]);
      if (b + 1 < r.probe_hist.size()) hist += ", ";
    }
    hist += "]";
    std::fprintf(
        f,
        "    {\"live_flows\": %zu, \"layout\": \"%s\", \"eviction\": \"%s\", "
        "\"table_slots\": %zu, \"packets\": %llu, \"decisions\": %llu, "
        "\"warmup\": %llu, \"flows_started\": %llu, \"hits\": %llu, "
        "\"misses\": %llu, \"inserts\": %llu, \"evictions\": %llu, "
        "\"flows_resident\": %llu, \"hit_rate\": %.6f, "
        "\"load_factor\": %.4f, \"mean_probe\": %.4f, "
        "\"probe_hist\": %s, \"wall_ms\": %.3f, "
        "\"packets_per_sec\": %.1f}%s\n",
        r.live_flows, r.layout.c_str(), r.eviction.c_str(), r.table_slots,
        static_cast<unsigned long long>(r.packets),
        static_cast<unsigned long long>(r.decisions),
        static_cast<unsigned long long>(r.warmup),
        static_cast<unsigned long long>(r.flows_started),
        static_cast<unsigned long long>(r.hits),
        static_cast<unsigned long long>(r.misses),
        static_cast<unsigned long long>(r.inserts),
        static_cast<unsigned long long>(r.evictions),
        static_cast<unsigned long long>(r.flows_resident), r.hit_rate,
        r.load_factor, r.mean_probe, hist.c_str(), r.wall_ms, r.pps,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
