// Reproduces Table 2 (the introduction's preview): Pegasus (CNN-L) vs
// prior works — average accuracy improvement, model-size ratio and
// input-scale ratio.
//
// Runs the same pipeline as Table 5 at reduced scale (Table 2 is a summary
// of Table 5's best rows).
#include <cstdio>
#include <cstdlib>

#include "common.hpp"

int main() {
  using namespace pegasus::bench;
  BenchScale scale = ScaleFromEnv();
  // Table 2 is derived from Table 5; run at reduced scale to keep the full
  // bench sweep affordable.
  scale.peerrush_flows = std::min<std::size_t>(scale.peerrush_flows, 80);
  scale.ciciot_flows = std::min<std::size_t>(scale.ciciot_flows, 80);
  scale.iscx_flows = std::min<std::size_t>(scale.iscx_flows, 50);

  auto data = PrepareAll(scale, /*with_raw_bytes=*/true);
  const auto rows = RunTable5(data, scale);

  const auto& leo = rows[0];
  const auto& n3ic = rows[1];
  const auto& bos = rows[3];
  const auto& cnnl = rows[7];

  auto avg_delta = [&](const Table5Row& base) {
    double acc = 0;
    for (std::size_t d = 0; d < base.cells.size(); ++d) {
      acc += cnnl.cells[d].f1 - base.cells[d].f1;
    }
    return 100.0 * acc / static_cast<double>(base.cells.size());
  };

  std::printf("\nTable 2: Pegasus (CNN-L) vs Prior Works\n");
  std::printf("%-24s %12s %12s %12s\n", "Prior work", "Accuracy^", "Model size",
              "Input scale");
  std::printf("%-24s %+11.1f%% %11.0fx %11.0fx\n", "N3IC (binary MLP)",
              avg_delta(n3ic), cnnl.model_size_kb / n3ic.model_size_kb,
              static_cast<double>(cnnl.input_scale_bits) /
                  static_cast<double>(n3ic.input_scale_bits));
  std::printf("%-24s %+11.1f%% %11.0fx %11.0fx\n", "BoS (binary RNN)",
              avg_delta(bos), cnnl.model_size_kb / bos.model_size_kb,
              static_cast<double>(cnnl.input_scale_bits) /
                  static_cast<double>(bos.input_scale_bits));
  std::printf("%-24s %+11.1f%% %12s %12s\n", "Leo (Decision Tree)",
              avg_delta(leo), "-", "-");
  std::printf("\n(paper: N3IC +22.8%% / 248x / 29x; BoS +17.9%% / 237x / "
              "212x; Leo +17.2%%)\n");
  return 0;
}
