#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "baselines/bos.hpp"
#include "baselines/leo.hpp"
#include "baselines/n3ic.hpp"

namespace pegasus::bench {

namespace bl = pegasus::baselines;
namespace ev = pegasus::eval;
namespace md = pegasus::models;
namespace tr = pegasus::traffic;

#ifndef PEGASUS_BUILD_TYPE
#define PEGASUS_BUILD_TYPE "unknown"
#endif
#ifndef PEGASUS_GIT_SHA
#define PEGASUS_GIT_SHA "unknown"
#endif

const char* BuildType() { return PEGASUS_BUILD_TYPE; }
const char* GitSha() { return PEGASUS_GIT_SHA; }

BenchScale ScaleFromEnv() {
  BenchScale s;
  const char* env = std::getenv("PEGASUS_BENCH_SCALE");
  if (env != nullptr && std::strcmp(env, "small") == 0) {
    s.peerrush_flows = 50;
    s.ciciot_flows = 50;
    s.iscx_flows = 35;
    s.epochs_small = 12;
    s.epochs_cnnl = 4;
    s.epochs_ae = 25;
  }
  return s;
}

std::vector<ev::PreparedDataset> PrepareAll(const BenchScale& scale,
                                            bool with_raw_bytes) {
  std::vector<ev::PreparedDataset> out;
  out.push_back(
      ev::Prepare(tr::PeerRushSpec(scale.peerrush_flows), with_raw_bytes));
  out.push_back(
      ev::Prepare(tr::CiciotSpec(scale.ciciot_flows), with_raw_bytes));
  out.push_back(
      ev::Prepare(tr::IscxVpnSpec(scale.iscx_flows), with_raw_bytes));
  return out;
}

namespace {

AccuracyCell CellFrom(const ev::ClassificationReport& rep) {
  return {rep.precision, rep.recall, rep.f1};
}

template <typename Predict>
AccuracyCell EvalOn(const tr::SampleSet& test, std::size_t num_classes,
                    Predict&& predict) {
  std::vector<std::int32_t> pred(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    pred[i] = predict(
        std::span<const float>(test.x.data() + i * test.dim, test.dim), i);
  }
  return CellFrom(ev::Evaluate(test.labels, pred, num_classes));
}

}  // namespace

std::vector<Table5Row> RunTable5(std::vector<ev::PreparedDataset>& data,
                                 const BenchScale& scale) {
  std::vector<Table5Row> rows(8);
  rows[0].method = "Leo (Decision Tree)";
  rows[1].method = "N3IC (binary MLP)";
  rows[2].method = "MLP-B";
  rows[3].method = "BoS (binary RNN)";
  rows[4].method = "RNN-B";
  rows[5].method = "CNN-B";
  rows[6].method = "CNN-M";
  rows[7].method = "CNN-L";

  for (auto& prep : data) {
    const std::size_t nc = prep.num_classes;
    std::fprintf(stderr, "[table5] %s: training 8 methods...\n",
                 prep.name.c_str());

    // --- Leo ------------------------------------------------------------
    {
      auto tree = bl::DecisionTree::Fit(
          prep.stat.train.x, prep.stat.train.labels, prep.stat.train.size(),
          prep.stat.train.dim, nc, {2048, 4, 8});
      rows[0].input_scale_bits = prep.stat.train.dim * 8;
      rows[0].model_size_kb = 0.0;  // '-' in the paper
      rows[0].cells.push_back(
          EvalOn(prep.stat.test, nc, [&](std::span<const float> x,
                                         std::size_t) {
            return tree.Predict(x);
          }));
    }
    // --- N3IC -----------------------------------------------------------
    {
      bl::N3icConfig cfg;
      cfg.epochs = scale.epochs_small * 2;  // BNNs converge slowly
      auto mlp = bl::BinaryMlp::Train(prep.stat.train.x,
                                      prep.stat.train.labels,
                                      prep.stat.train.size(),
                                      prep.stat.train.dim, nc, cfg);
      rows[1].input_scale_bits = prep.stat.train.dim * 8;
      rows[1].model_size_kb = mlp.ModelSizeKb();
      rows[1].cells.push_back(EvalOn(
          prep.stat.test, nc,
          [&](std::span<const float> x, std::size_t) { return mlp.Predict(x); }));
    }
    // --- MLP-B ----------------------------------------------------------
    {
      md::MlpBConfig cfg;
      cfg.epochs = scale.epochs_small;
      auto m = md::MlpB::Train(prep.stat.train.x, prep.stat.train.labels,
                               prep.stat.train.size(), prep.stat.train.dim,
                               nc, cfg);
      rows[2].input_scale_bits = m->InputScaleBits();
      rows[2].model_size_kb = m->ModelSizeKb();
      rows[2].cells.push_back(EvalOn(
          prep.stat.test, nc, [&](std::span<const float> x, std::size_t) {
            return m->PredictClassFuzzy(x);
          }));
    }
    // --- BoS ------------------------------------------------------------
    {
      bl::BosConfig cfg;
      cfg.epochs = scale.epochs_small * 2;
      auto rnn = bl::BosRnn::Train(prep.seq.train.x, prep.seq.train.labels,
                                   prep.seq.train.size(), prep.seq.train.dim,
                                   nc, cfg);
      rows[3].input_scale_bits = rnn.InputScaleBits();
      rows[3].model_size_kb = rnn.ModelSizeKb();
      rows[3].cells.push_back(EvalOn(
          prep.seq.test, nc,
          [&](std::span<const float> x, std::size_t) { return rnn.Predict(x); }));
    }
    // --- RNN-B ----------------------------------------------------------
    {
      md::RnnBConfig cfg;
      cfg.epochs = scale.epochs_small;
      auto m = md::RnnB::Train(prep.seq.train.x, prep.seq.train.labels,
                               prep.seq.train.size(), prep.seq.train.dim, nc,
                               cfg);
      rows[4].input_scale_bits = m->InputScaleBits();
      rows[4].model_size_kb = m->ModelSizeKb();
      rows[4].cells.push_back(EvalOn(
          prep.seq.test, nc, [&](std::span<const float> x, std::size_t) {
            return m->PredictClassFuzzy(x);
          }));
    }
    // --- CNN-B ----------------------------------------------------------
    {
      md::CnnBConfig cfg;
      cfg.epochs = scale.epochs_small;
      auto m = md::CnnB::Train(prep.seq.train.x, prep.seq.train.labels,
                               prep.seq.train.size(), prep.seq.train.dim, nc,
                               cfg);
      rows[5].input_scale_bits = m->InputScaleBits();
      rows[5].model_size_kb = m->ModelSizeKb();
      rows[5].cells.push_back(EvalOn(
          prep.seq.test, nc, [&](std::span<const float> x, std::size_t) {
            return m->PredictClassFuzzy(x);
          }));
    }
    // --- CNN-M ----------------------------------------------------------
    {
      md::CnnMConfig cfg;
      cfg.epochs = scale.epochs_small;
      auto m = md::CnnM::Train(prep.seq.train.x, prep.seq.train.labels,
                               prep.seq.train.size(), prep.seq.train.dim, nc,
                               cfg);
      rows[6].input_scale_bits = m->InputScaleBits();
      rows[6].model_size_kb = m->ModelSizeKb();
      rows[6].cells.push_back(EvalOn(
          prep.seq.test, nc, [&](std::span<const float> x, std::size_t) {
            return m->PredictClassFuzzy(x);
          }));
    }
    // --- CNN-L ----------------------------------------------------------
    {
      md::CnnLConfig cfg;
      cfg.epochs = scale.epochs_cnnl;
      auto m = md::CnnL::Train(prep.raw.train.x, prep.seq.train.x,
                               prep.raw.train.labels, prep.raw.train.size(),
                               nc, cfg);
      rows[7].input_scale_bits = m->InputScaleBits();
      rows[7].model_size_kb = m->ModelSizeKb();
      const auto& test = prep.raw.test;
      rows[7].cells.push_back(EvalOn(
          test, nc, [&](std::span<const float> x, std::size_t i) {
            const auto packed = md::CnnL::PackInput(
                x,
                std::span<const float>(
                    prep.seq.test.x.data() + i * prep.seq.test.dim,
                    prep.seq.test.dim),
                cfg.use_ipd);
            return m->PredictClassFuzzy(packed);
          }));
    }
  }
  return rows;
}

void PrintTable5(const std::vector<Table5Row>& rows,
                 const std::vector<ev::PreparedDataset>& data,
                 const char* title) {
  std::printf("\n%s\n", title);
  std::printf("%-22s %10s %10s", "Method", "Input(b)", "Size(Kb)");
  for (const auto& d : data) {
    std::printf(" | %-8s PR     RC     F1 ", d.name.c_str());
  }
  std::printf("\n");
  for (const auto& row : rows) {
    std::printf("%-22s %10zu ", row.method.c_str(), row.input_scale_bits);
    if (row.model_size_kb > 0) {
      std::printf("%10.1f", row.model_size_kb);
    } else {
      std::printf("%10s", "-");
    }
    for (const auto& c : row.cells) {
      std::printf(" |    %.4f %.4f %.4f", c.precision, c.recall, c.f1);
    }
    std::printf("\n");
  }
}

std::vector<Fig9Cell> RunFig9Accuracy(std::vector<ev::PreparedDataset>& data,
                                      const BenchScale& scale) {
  std::vector<Fig9Cell> cells;
  for (auto& prep : data) {
    const std::size_t nc = prep.num_classes;
    std::fprintf(stderr, "[fig9] %s: training 5 Pegasus models...\n",
                 prep.name.c_str());
    auto eval_both = [&](const std::string& name,
                         const md::TrainedModel& model,
                         const tr::SampleSet& test, bool pack_cnnl) {
      std::vector<std::int32_t> pf(test.size()), pz(test.size());
      for (std::size_t i = 0; i < test.size(); ++i) {
        std::span<const float> row(test.x.data() + i * test.dim, test.dim);
        std::vector<float> packed;
        std::span<const float> in = row;
        if (pack_cnnl) {
          packed = md::CnnL::PackInput(
              row,
              std::span<const float>(
                  prep.seq.test.x.data() + i * prep.seq.test.dim,
                  prep.seq.test.dim),
              true);
          in = packed;
        }
        pf[i] = model.PredictClassFloat(in);
        pz[i] = model.PredictClassFuzzy(in);
      }
      Fig9Cell cell;
      cell.model = name;
      cell.dataset = prep.name;
      cell.f1_float = ev::Evaluate(test.labels, pf, nc).f1;
      cell.f1_fuzzy = ev::Evaluate(test.labels, pz, nc).f1;
      cells.push_back(cell);
    };

    {
      md::MlpBConfig cfg;
      cfg.epochs = scale.epochs_small;
      auto m = md::MlpB::Train(prep.stat.train.x, prep.stat.train.labels,
                               prep.stat.train.size(), prep.stat.train.dim,
                               nc, cfg);
      eval_both("MLP-B", *m, prep.stat.test, false);
    }
    {
      md::RnnBConfig cfg;
      cfg.epochs = scale.epochs_small;
      auto m = md::RnnB::Train(prep.seq.train.x, prep.seq.train.labels,
                               prep.seq.train.size(), prep.seq.train.dim, nc,
                               cfg);
      eval_both("RNN-B", *m, prep.seq.test, false);
    }
    {
      md::CnnBConfig cfg;
      cfg.epochs = scale.epochs_small;
      auto m = md::CnnB::Train(prep.seq.train.x, prep.seq.train.labels,
                               prep.seq.train.size(), prep.seq.train.dim, nc,
                               cfg);
      eval_both("CNN-B", *m, prep.seq.test, false);
    }
    {
      md::CnnMConfig cfg;
      cfg.epochs = scale.epochs_small;
      auto m = md::CnnM::Train(prep.seq.train.x, prep.seq.train.labels,
                               prep.seq.train.size(), prep.seq.train.dim, nc,
                               cfg);
      eval_both("CNN-M", *m, prep.seq.test, false);
    }
    {
      md::CnnLConfig cfg;
      cfg.epochs = scale.epochs_cnnl;
      auto m = md::CnnL::Train(prep.raw.train.x, prep.seq.train.x,
                               prep.raw.train.labels, prep.raw.train.size(),
                               nc, cfg);
      eval_both("CNN-L", *m, prep.raw.test, true);
    }
  }
  return cells;
}

}  // namespace pegasus::bench
