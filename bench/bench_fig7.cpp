// Reproduces Figure 7: classification accuracy vs per-flow storage for the
// CNN-L variants, with the X-axis expressed (as in the paper) as the SRAM
// share needed to support 1M concurrent flows.
//
//   28 b/flow: 4-bit fuzzy indexes, no IPD feature
//   44 b/flow: 4-bit fuzzy indexes + 16-bit previous timestamp (IPD)
//   72 b/flow: 8-bit fuzzy indexes + timestamp
//
// Expected shape: accuracy rises with per-flow budget but even the 28-bit
// variant stays within ~1% of the full model.
#include <cstdio>

#include "common.hpp"
#include "dataplane/resources.hpp"

int main() {
  using namespace pegasus::bench;
  namespace md = pegasus::models;
  namespace ev = pegasus::eval;

  const BenchScale scale = ScaleFromEnv();
  auto data = PrepareAll(scale, /*with_raw_bytes=*/true);
  const pegasus::dataplane::SwitchModel sw;
  constexpr std::size_t kFlows = 1'000'000;

  struct Variant {
    const char* label;
    bool use_ipd;
    int index_bits;
  };
  const Variant variants[] = {
      {"28-bit (4b idx, no IPD)", false, 4},
      {"44-bit (4b idx + IPD)", true, 4},
      {"72-bit (8b idx + IPD)", true, 8},
  };

  std::printf("Figure 7: accuracy vs per-flow storage (CNN-L variants)\n");
  std::printf("%-26s %10s %12s", "Variant", "bits/flow", "SRAM@1Mflow");
  for (const auto& d : data) std::printf(" %10s", d.name.c_str());
  std::printf("\n");

  for (const Variant& v : variants) {
    std::vector<double> f1s;
    std::size_t bits_per_flow = 0;
    for (auto& prep : data) {
      md::CnnLConfig cfg;
      cfg.epochs = scale.epochs_cnnl;
      cfg.use_ipd = v.use_ipd;
      cfg.index_bits = v.index_bits;
      auto m = md::CnnL::Train(prep.raw.train.x, prep.seq.train.x,
                               prep.raw.train.labels, prep.raw.train.size(),
                               prep.num_classes, cfg);
      bits_per_flow = m->FlowState().BitsPerFlow();
      const auto& test = prep.raw.test;
      std::vector<std::int32_t> pred(test.size());
      for (std::size_t i = 0; i < test.size(); ++i) {
        const auto packed = md::CnnL::PackInput(
            std::span<const float>(test.x.data() + i * test.dim, test.dim),
            std::span<const float>(
                prep.seq.test.x.data() + i * prep.seq.test.dim,
                prep.seq.test.dim),
            v.use_ipd);
        pred[i] = m->PredictClassFuzzy(packed);
      }
      f1s.push_back(ev::Evaluate(test.labels, pred, prep.num_classes).f1);
    }
    const double sram_pct =
        100.0 *
        static_cast<double>(
            pegasus::dataplane::PerFlowSramBits(bits_per_flow, kFlows)) /
        static_cast<double>(sw.TotalSramBits());
    std::printf("%-26s %10zu %11.1f%%", v.label, bits_per_flow, sram_pct);
    for (double f1 : f1s) std::printf(" %10.4f", f1);
    std::printf("\n");
  }
  std::printf("\n(paper: 28b->17.0%% SRAM, F1 0.991/0.929/0.972; 44b->25.5%%;"
              " 72b->38.3%%, F1 up to 0.9966/0.9380/0.9872)\n");
  return 0;
}
