// Reproduces Table 5: classification accuracy (macro PR/RC/F1), input
// scale and model size for Leo, N3IC, MLP-B, BoS, RNN-B, CNN-B, CNN-M and
// CNN-L across the three traffic-classification datasets.
//
// Expected shape (paper): MLP-B > N3IC on the same features; RNN-B/CNN-B >
// BoS on the same windows; CNN-M > CNN-B; CNN-L dominates everything with
// a 3840-bit input scale.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace pegasus::bench;
  const BenchScale scale = ScaleFromEnv();
  auto data = PrepareAll(scale, /*with_raw_bytes=*/true);
  const auto rows = RunTable5(data, scale);
  PrintTable5(rows, data,
              "Table 5: Comparison of classification accuracy across "
              "different methods");

  // Paper-vs-measured deltas the evaluation text calls out.
  auto f1 = [&](std::size_t row, std::size_t ds) {
    return rows[row].cells[ds].f1;
  };
  std::printf("\nKey comparisons (positive = Pegasus wins, averaged over "
              "datasets):\n");
  double mlp_vs_n3ic = 0, rnn_vs_bos = 0, cnnl_vs_leo = 0, cnnl_vs_n3ic = 0,
         cnnl_vs_bos = 0, cnnm_vs_cnnb = 0;
  for (std::size_t d = 0; d < data.size(); ++d) {
    mlp_vs_n3ic += f1(2, d) - f1(1, d);
    rnn_vs_bos += f1(4, d) - f1(3, d);
    cnnl_vs_leo += f1(7, d) - f1(0, d);
    cnnl_vs_n3ic += f1(7, d) - f1(1, d);
    cnnl_vs_bos += f1(7, d) - f1(3, d);
    cnnm_vs_cnnb += f1(6, d) - f1(5, d);
  }
  const double nd = static_cast<double>(data.size());
  std::printf("  MLP-B  - N3IC : %+.3f  (paper: +0.058..+0.119)\n",
              mlp_vs_n3ic / nd);
  std::printf("  RNN-B  - BoS  : %+.3f  (paper: +0.041..+0.071)\n",
              rnn_vs_bos / nd);
  std::printf("  CNN-M  - CNN-B: %+.3f  (paper: +0.015..+0.026)\n",
              cnnm_vs_cnnb / nd);
  std::printf("  CNN-L  - Leo  : %+.3f  (paper: +0.172 avg)\n",
              cnnl_vs_leo / nd);
  std::printf("  CNN-L  - N3IC : %+.3f  (paper: +0.228 avg)\n",
              cnnl_vs_n3ic / nd);
  std::printf("  CNN-L  - BoS  : %+.3f  (paper: +0.179 avg)\n",
              cnnl_vs_bos / nd);
  return 0;
}
