// Reproduces Table 6: hardware resource utilization — stateful bits/flow,
// stateless SRAM %, TCAM %, and Action Data Bus % for each method lowered
// onto the simulated Tofino-2-class switch.
//
// As in the paper, BoS uses its moderate configuration (hidden size 8) and
// Leo 1024 nodes; Pegasus models are the Table 5 configurations. Expected
// shape: BoS has zero TCAM; CNN-M beats CNN-B on every resource column
// despite being ~80x larger (Advanced Primitive Fusion); CNN-L stays under
// ~15% of SRAM/TCAM despite a megabit-class model.
#include <cstdio>

#include "baselines/bos.hpp"
#include "baselines/leo.hpp"
#include "common.hpp"
#include "compiler/compiler.hpp"
#include "runtime/lowering.hpp"

namespace {

using pegasus::dataplane::ResourceReport;
using pegasus::dataplane::SwitchModel;

void PrintRow(const char* name, std::size_t stateful,
              const ResourceReport& rep, const SwitchModel& sw) {
  std::printf("%-12s %14zu %9.2f%% %9.2f%% %9.2f%%\n", name, stateful,
              rep.SramPct(sw), rep.TcamPct(sw), rep.ActionBusPct(sw));
}

}  // namespace

int main() {
  using namespace pegasus::bench;
  namespace bl = pegasus::baselines;
  namespace md = pegasus::models;
  namespace rt = pegasus::runtime;

  const BenchScale scale = ScaleFromEnv();
  // Resource shape is dataset-independent; PeerRush stands in.
  auto prep = pegasus::eval::Prepare(
      pegasus::traffic::PeerRushSpec(scale.peerrush_flows),
      /*with_raw_bytes=*/true);
  const std::size_t nc = prep.num_classes;
  const SwitchModel sw;

  std::printf("Table 6: Hardware resource utilization\n");
  std::printf("%-12s %14s %10s %10s %10s\n", "Model", "Stateful b/flow",
              "SRAM", "TCAM", "Bus");

  // --- Leo (1024 nodes) --------------------------------------------------
  {
    auto tree = bl::DecisionTree::Fit(prep.stat.train.x,
                                      prep.stat.train.labels,
                                      prep.stat.train.size(),
                                      prep.stat.train.dim, nc, {1024, 4, 8});
    const auto rep = tree.Footprint(sw);
    PrintRow("Leo", rep.stateful_bits_per_flow, rep, sw);
  }
  // --- BoS (hidden 8) ------------------------------------------------------
  {
    bl::BosConfig cfg;
    cfg.hidden = 8;
    cfg.epochs = 2;  // resources do not depend on training quality
    auto rnn = bl::BosRnn::Train(prep.seq.train.x, prep.seq.train.labels,
                                 prep.seq.train.size(), prep.seq.train.dim,
                                 nc, cfg);
    const auto rep = rnn.Footprint(sw);
    PrintRow("BoS", rep.stateful_bits_per_flow, rep, sw);
  }
  // --- Pegasus models ------------------------------------------------------
  auto lower_and_print = [&](const char* name,
                             const md::TrainedModel& model) {
    rt::LoweringOptions opts;
    opts.stateful_bits_per_flow = model.FlowState().BitsPerFlow();
    const auto lowered = pegasus::compiler::PlaceOnSwitch(model.Compiled(), opts);
    const auto rep = lowered.Report();
    PrintRow(name, rep.stateful_bits_per_flow, rep, sw);
  };

  {
    md::MlpBConfig cfg;
    cfg.epochs = scale.epochs_small;
    auto m = md::MlpB::Train(prep.stat.train.x, prep.stat.train.labels,
                             prep.stat.train.size(), prep.stat.train.dim, nc,
                             cfg);
    lower_and_print("MLP-B", *m);
  }
  {
    md::RnnBConfig cfg;
    cfg.epochs = scale.epochs_small;
    auto m = md::RnnB::Train(prep.seq.train.x, prep.seq.train.labels,
                             prep.seq.train.size(), prep.seq.train.dim, nc,
                             cfg);
    lower_and_print("RNN-B", *m);
  }
  {
    md::CnnBConfig cfg;
    cfg.epochs = scale.epochs_small;
    auto m = md::CnnB::Train(prep.seq.train.x, prep.seq.train.labels,
                             prep.seq.train.size(), prep.seq.train.dim, nc,
                             cfg);
    lower_and_print("CNN-B", *m);
  }
  {
    md::CnnMConfig cfg;
    cfg.epochs = scale.epochs_small;
    auto m = md::CnnM::Train(prep.seq.train.x, prep.seq.train.labels,
                             prep.seq.train.size(), prep.seq.train.dim, nc,
                             cfg);
    lower_and_print("CNN-M", *m);
  }
  {
    md::CnnLConfig cfg;
    cfg.epochs = scale.epochs_cnnl;
    auto m = md::CnnL::Train(prep.raw.train.x, prep.seq.train.x,
                             prep.raw.train.labels, prep.raw.train.size(),
                             nc, cfg);
    // On the switch the extractor tables are shared across all packets of
    // a window; total footprint = extractor + window classifier.
    rt::LoweringOptions opts;
    opts.stateful_bits_per_flow = m->FlowState().BitsPerFlow();
    const auto ext = pegasus::compiler::PlaceOnSwitch(m->CompiledExtractor(), opts);
    const auto cls = pegasus::compiler::PlaceOnSwitch(m->CompiledClassifier());
    auto rep = ext.Report();
    const auto crep = cls.Report();
    rep.sram_bits += crep.sram_bits;
    rep.tcam_bits += crep.tcam_bits;
    rep.total_action_bus_bits += crep.total_action_bus_bits;
    rep.stages_used += crep.stages_used;
    PrintRow("CNN-L", rep.stateful_bits_per_flow, rep, sw);
  }
  {
    md::AutoencoderConfig cfg;
    cfg.epochs = scale.epochs_ae;
    auto m = md::Autoencoder::Train(prep.seq.train.x, prep.seq.train.size(),
                                    prep.seq.train.dim, cfg);
    lower_and_print("AutoEncoder", *m);
  }

  std::printf("\n(paper Table 6: Leo 80b 2.44/21.67/3.55; BoS 72b 2.81/0/"
              "0.74; MLP-B 80b 7.75/12.92/29.45; RNN-B 240b 7.38/23.33/"
              "33.36; CNN-B 72b 5.56/7.08/13.16; CNN-M 72b 3.50/6.67/3.98; "
              "CNN-L 44b 7.12/13.33/7.11; AE 240b 5.06/7.92/7.23)\n");
  return 0;
}
