// Reproduces Figure 9: (a-c) Pegasus dataplane accuracy vs full-precision
// CPU/GPU accuracy for every model on every dataset; (d) throughput of the
// dataplane vs the control plane.
//
// Throughput methodology (DESIGN.md §2 substitution): CPU throughput is
// *measured* single-core float inference scaled to the testbed's core
// count; GPU throughput is modeled from the paper's observed switch/GPU
// ratio; switch throughput is the line-rate model — a PISA pipeline
// classifies every packet at line rate regardless of model size, so
// samples/s = line_rate / mean packet size. We also report the *measured*
// software-simulator rate for transparency (it is NOT switch speed).
#include <chrono>
#include <functional>
#include <cstdio>

#include "common.hpp"
#include "compiler/compiler.hpp"
#include "dataplane/resources.hpp"
#include "runtime/inference_engine.hpp"
#include "runtime/lowering.hpp"

namespace {

double MeasureRate(const std::function<void(std::size_t)>& fn,
                   std::size_t iters) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) fn(i);
  const auto t1 = std::chrono::steady_clock::now();
  const double sec =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  return static_cast<double>(iters) / std::max(sec, 1e-9);
}

}  // namespace

int main() {
  using namespace pegasus::bench;
  namespace md = pegasus::models;

  const BenchScale scale = ScaleFromEnv();
  auto data = PrepareAll(scale, /*with_raw_bytes=*/true);

  // ---- (a-c) accuracy: Pegasus vs full precision -------------------------
  const auto cells = RunFig9Accuracy(data, scale);
  std::printf("Figure 9a-c: Pegasus (dataplane) vs CPU/GPU (full precision) "
              "macro-F1\n");
  std::printf("%-10s %-10s %12s %12s %10s\n", "Dataset", "Model",
              "CPU/GPU F1", "Pegasus F1", "delta");
  double total_drop = 0;
  for (const auto& c : cells) {
    std::printf("%-10s %-10s %12.4f %12.4f %+10.4f\n", c.dataset.c_str(),
                c.model.c_str(), c.f1_float, c.f1_fuzzy,
                c.f1_fuzzy - c.f1_float);
    total_drop += c.f1_float - c.f1_fuzzy;
  }
  std::printf("mean accuracy reduction: %.4f (paper: 0.0108 mean, "
              "0.002..0.017)\n\n", total_drop / static_cast<double>(cells.size()));

  // ---- (d) throughput -----------------------------------------------------
  // Measured: CPU float inference (MLP-B as the representative per-packet
  // model) and the software simulator's per-packet pipeline rate.
  auto& prep = data[0];
  md::MlpBConfig mcfg;
  mcfg.epochs = scale.epochs_small;
  auto mlp = md::MlpB::Train(prep.stat.train.x, prep.stat.train.labels,
                             prep.stat.train.size(), prep.stat.train.dim,
                             prep.num_classes, mcfg);
  pegasus::runtime::LoweredModel lowered =
      pegasus::compiler::PlaceOnSwitch(mlp->Compiled());

  const auto& test = prep.stat.test;
  const std::size_t n = test.size();
  auto row = [&](std::size_t i) {
    return std::span<const float>(test.x.data() + (i % n) * test.dim,
                                  test.dim);
  };
  const double mlp_core_rate =
      MeasureRate([&](std::size_t i) { mlp->FloatPredict(row(i)); }, 20000);
  const double sim_rate = MeasureRate(
      [&](std::size_t i) { lowered.InferRaw(row(i)); }, 20000);
  const double host_fuzzy_rate = MeasureRate(
      [&](std::size_t i) { mlp->Compiled().EvaluateRaw(row(i)); }, 20000);

  // Batched simulator rate: the InferenceEngine preallocates a PHV pool and
  // runs whole batches stage-major through the pipeline, so per-packet
  // allocation disappears from the hot loop.
  const std::size_t batch_rows = std::min<std::size_t>(n, 256);
  pegasus::runtime::InferenceEngine engine(lowered, batch_rows);
  std::vector<std::int64_t> raw_out(batch_rows * lowered.OutputDim());
  // Slide the batch window across the test set so the batched path streams
  // fresh rows like the per-call baselines (no warm-cache replay bias).
  const std::size_t max_start = n - batch_rows;
  const double sim_batch_rate =
      MeasureRate(
          [&](std::size_t i) {
            const std::size_t start =
                max_start > 0 ? (i * batch_rows) % max_start : 0;
            engine.InferRaw(
                std::span<const float>(test.x.data() + start * test.dim,
                                       batch_rows * test.dim),
                batch_rows, raw_out);
          },
          20000 / batch_rows + 1) *
      static_cast<double>(batch_rows);

  // Mid/large models for the representative CPU rate (training quality is
  // irrelevant to inference cost, so 2 epochs suffice).
  md::CnnMConfig ccfg;
  ccfg.epochs = 2;
  auto cnnm = md::CnnM::Train(prep.seq.train.x, prep.seq.train.labels,
                              prep.seq.train.size(), prep.seq.train.dim,
                              prep.num_classes, ccfg);
  const auto& stest = prep.seq.test;
  auto srow = [&](std::size_t i) {
    return std::span<const float>(
        stest.x.data() + (i % stest.size()) * stest.dim, stest.dim);
  };
  const double cnnm_core_rate = MeasureRate(
      [&](std::size_t i) { cnnm->FloatPredict(srow(i)); }, 5000);

  md::CnnLConfig lcfg;
  lcfg.epochs = 1;
  auto cnnl = md::CnnL::Train(prep.raw.train.x, prep.seq.train.x,
                              prep.raw.train.labels, prep.raw.train.size(),
                              prep.num_classes, lcfg);
  const auto& rtest = prep.raw.test;
  std::vector<std::vector<float>> packed_rows;
  for (std::size_t i = 0; i < std::min<std::size_t>(rtest.size(), 256); ++i) {
    packed_rows.push_back(md::CnnL::PackInput(
        std::span<const float>(rtest.x.data() + i * rtest.dim, rtest.dim),
        std::span<const float>(prep.seq.test.x.data() + i * prep.seq.test.dim,
                               prep.seq.test.dim),
        true));
  }
  const double cnnl_core_rate = MeasureRate(
      [&](std::size_t i) {
        cnnl->FloatPredict(packed_rows[i % packed_rows.size()]);
      },
      2000);

  // Testbed model (documented substitution): 22-core Xeon E5-2699 v4 -> 22x
  // single-core rate; Tofino 2 line rate / 800 B mean packet; GPU modeled
  // from the paper's observed switch/GPU ratio (~600x) relative to its
  // switch/CPU ratio (~3800x), i.e. GPU ~ 6.3x CPU.
  const pegasus::dataplane::SwitchModel sw;
  const double switch_rate = sw.line_rate_bits_per_sec / (800.0 * 8.0);

  std::printf("Figure 9d: throughput (samples/s)\n");
  std::printf("  %-36s %12.3e  (line-rate model, 12.8 Tb/s / 800 B)\n",
              "Pegasus on switch (any model)", switch_rate);
  struct CpuRow {
    const char* name;
    double core_rate;
  } cpu_rows[] = {{"CPU float MLP-B", mlp_core_rate},
                  {"CPU float CNN-M", cnnm_core_rate},
                  {"CPU float CNN-L", cnnl_core_rate}};
  for (const auto& r : cpu_rows) {
    const double cpu_rate = r.core_rate * 22.0;
    const double gpu_rate = cpu_rate * (3800.0 / 600.0);
    std::printf("  %-36s %12.3e  switch/CPU=%7.0fx  switch/GPU=%6.0fx\n",
                r.name, cpu_rate, switch_rate / cpu_rate,
                switch_rate / gpu_rate);
  }
  std::printf("  (paper: switch >3800x CPU, >600x GPU; the ratio grows with "
              "model size because switch throughput is size-independent)\n");
  std::printf("  %-36s %12.3e  (measured; simulator, not switch speed)\n",
              "[software pipeline simulator]", sim_rate);
  std::printf("  %-36s %12.3e  (measured; batched engine, batch=%zu)\n",
              "[software simulator, batched]", sim_batch_rate, batch_rows);
  std::printf("  %-36s %12.3e  (measured; host-side fuzzy reference)\n",
              "[host fuzzy evaluator]", host_fuzzy_rate);
  return 0;
}
