// Micro-benchmarks (google-benchmark) of the primitive building blocks:
// clustering-tree lookup, TCAM table match, CRC ternary expansion, a full
// per-packet pipeline pass, and per-call vs batched inference over a
// lowered model. These bound the *simulator's* throughput (Figure 9d
// reports the line-rate model for the real switch).
#include <benchmark/benchmark.h>

#include <memory>
#include <random>

#include "compiler/compiler.hpp"
#include "core/fuzzy.hpp"
#include "core/operators.hpp"
#include "dataplane/crc.hpp"
#include "dataplane/pipeline.hpp"
#include "dataplane/table.hpp"
#include "runtime/inference_engine.hpp"

namespace {

using namespace pegasus;

std::vector<float> RandomRows(std::size_t n, std::size_t dim,
                              std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  std::vector<float> x(n * dim);
  for (float& v : x) v = std::floor(dist(rng));
  return x;
}

void BM_ClusterTreeLookup(benchmark::State& state) {
  const auto leaves = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 4;
  const auto data = RandomRows(4000, dim, 1);
  auto tree = core::ClusterTree::Fit(data, 4000, dim, {leaves, 8, 1});
  const auto probes = RandomRows(1024, dim, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(
        std::span<const float>(probes.data() + (i++ % 1024) * dim, dim)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClusterTreeLookup)->Arg(16)->Arg(64)->Arg(256);

void BM_CrcExpansion(benchmark::State& state) {
  std::mt19937_64 rng(3);
  const int width = static_cast<int>(state.range(0));
  const std::uint64_t max = (1ull << width) - 1;
  std::uniform_int_distribution<std::uint64_t> dist(0, max);
  for (auto _ : state) {
    std::uint64_t a = dist(rng), b = dist(rng);
    if (a > b) std::swap(a, b);
    benchmark::DoNotOptimize(dataplane::RangeToTernary(a, b, width));
  }
}
BENCHMARK(BM_CrcExpansion)->Arg(8)->Arg(10)->Arg(16);

// Shared table builders for the indexed-vs-linear lookup families. The
// sealed variants exercise the compiled bit-vector MatchIndex (the
// production path — Pipeline::PlaceTable seals every table); the *Linear
// variants keep the table unsealed to pin the pre-index scan cost in the
// same BENCH_micro.json artifact.

dataplane::MatchActionTable BuildTernaryBenchTable(dataplane::PhvLayout& layout,
                                                   std::size_t entries,
                                                   bool sealed) {
  const auto key = layout.AddField("k", 10);
  const auto out = layout.AddField("o", 16);
  std::vector<dataplane::ActionOp> prog{
      {dataplane::ActionOp::Kind::kSetFromData, out, 0, 0, -1}};
  dataplane::MatchActionTable table("t", dataplane::MatchKind::kTernary,
                                    {key}, {10}, prog, 16);
  // Disjoint single-value entries + catch-all.
  for (std::size_t e = 0; e < entries; ++e) {
    table.AddEntry({.ternary = {dataplane::TernaryRule{e, 0x3ff}},
                    .priority = 1,
                    .action_data = {static_cast<std::int64_t>(e)}});
  }
  table.AddEntry({.ternary = {dataplane::TernaryRule{0, 0}}, .action_data = {0}});
  if (sealed) table.Seal();
  return table;
}

dataplane::MatchActionTable BuildRangeBenchTable(dataplane::PhvLayout& layout,
                                                 std::size_t entries,
                                                 bool sealed) {
  const auto key = layout.AddField("k", 16);
  const auto out = layout.AddField("o", 16);
  std::vector<dataplane::ActionOp> prog{
      {dataplane::ActionOp::Kind::kSetFromData, out, 0, 0, -1}};
  dataplane::MatchActionTable table("r", dataplane::MatchKind::kRange, {key},
                                    {16}, prog, 16);
  // Disjoint 16-wide buckets + catch-all, like a quantized feature axis.
  for (std::size_t e = 0; e < entries; ++e) {
    table.AddEntry({.range_lo = {e * 16},
                    .range_hi = {e * 16 + 15},
                    .priority = 1,
                    .action_data = {static_cast<std::int64_t>(e)}});
  }
  table.AddEntry({.range_lo = {0}, .range_hi = {65535}, .action_data = {0}});
  if (sealed) table.Seal();
  return table;
}

void RunLookupLoop(benchmark::State& state,
                   const dataplane::MatchActionTable& table,
                   dataplane::Phv& phv, dataplane::FieldId key,
                   std::size_t key_span) {
  std::size_t i = 0;
  for (auto _ : state) {
    phv.Set(key, static_cast<std::int64_t>(i++ % key_span));
    benchmark::DoNotOptimize(table.Apply(phv));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_TernaryTableLookup(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  dataplane::PhvLayout layout;
  const auto table = BuildTernaryBenchTable(layout, entries, /*sealed=*/true);
  dataplane::Phv phv(layout);
  RunLookupLoop(state, table, phv, layout.Find("k"), entries + 16);
}
BENCHMARK(BM_TernaryTableLookup)->Arg(16)->Arg(128)->Arg(1024);

void BM_TernaryTableLookupLinear(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  dataplane::PhvLayout layout;
  const auto table = BuildTernaryBenchTable(layout, entries, /*sealed=*/false);
  dataplane::Phv phv(layout);
  RunLookupLoop(state, table, phv, layout.Find("k"), entries + 16);
}
BENCHMARK(BM_TernaryTableLookupLinear)->Arg(16)->Arg(128)->Arg(1024);

void BM_RangeTableLookup(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  dataplane::PhvLayout layout;
  const auto table = BuildRangeBenchTable(layout, entries, /*sealed=*/true);
  dataplane::Phv phv(layout);
  RunLookupLoop(state, table, phv, layout.Find("k"), entries * 16 + 64);
}
BENCHMARK(BM_RangeTableLookup)->Arg(16)->Arg(128)->Arg(1024);

void BM_RangeTableLookupLinear(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  dataplane::PhvLayout layout;
  const auto table = BuildRangeBenchTable(layout, entries, /*sealed=*/false);
  dataplane::Phv phv(layout);
  RunLookupLoop(state, table, phv, layout.Find("k"), entries * 16 + 64);
}
BENCHMARK(BM_RangeTableLookupLinear)->Arg(16)->Arg(128)->Arg(1024);

void RunApplyBatchLoop(benchmark::State& state, bool sealed) {
  // 1024-entry table, 64-packet batches: the ApplyBatch shape the
  // InferenceEngine drives.
  const std::size_t entries = 1024, batch = 64;
  dataplane::PhvLayout layout;
  const auto table = BuildTernaryBenchTable(layout, entries, sealed);
  const auto key = layout.Find("k");
  std::vector<dataplane::Phv> phvs(batch, dataplane::Phv(layout));
  for (std::size_t p = 0; p < batch; ++p) {
    phvs[p].Set(key, static_cast<std::int64_t>((p * 37) % (entries + 16)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.ApplyBatch(std::span<dataplane::Phv>(phvs)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}

void BM_TernaryApplyBatch(benchmark::State& state) {
  RunApplyBatchLoop(state, /*sealed=*/true);
}
BENCHMARK(BM_TernaryApplyBatch);

void BM_TernaryApplyBatchLinear(benchmark::State& state) {
  RunApplyBatchLoop(state, /*sealed=*/false);
}
BENCHMARK(BM_TernaryApplyBatchLinear);

void BM_MatchIndexBuild(benchmark::State& state) {
  // Seal-time cost of compiling the bit-vector index (the one-off price a
  // table pays at placement for the indexed hot path), plus its footprint.
  const auto entries = static_cast<std::size_t>(state.range(0));
  std::vector<dataplane::TableEntry> list;
  for (std::size_t e = 0; e < entries; ++e) {
    list.push_back({.ternary = {dataplane::TernaryRule{e, 0x3ff}},
                    .priority = 1,
                    .action_data = {static_cast<std::int64_t>(e)}});
  }
  list.push_back({.ternary = {dataplane::TernaryRule{0, 0}}, .action_data = {0}});
  const std::uint64_t probe = 3;
  std::size_t bytes = 0;
  for (auto _ : state) {
    dataplane::MatchIndex index(list, /*kind_is_ternary=*/true);
    bytes = index.stats().bytes;
    benchmark::DoNotOptimize(index.FindBest(&probe));
  }
  state.counters["index_bytes"] = static_cast<double>(bytes);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(entries));
}
BENCHMARK(BM_MatchIndexBuild)->Arg(128)->Arg(1024)->Arg(4096);

void BM_PipelineProcess(benchmark::State& state) {
  // A 4-stage pipeline of small exact tables, roughly an MLP-B pass.
  dataplane::Pipeline pipe;
  dataplane::PhvLayout layout;
  const auto key = layout.AddField("k", 8);
  std::vector<dataplane::FieldId> outs;
  for (int s = 0; s < 4; ++s) {
    outs.push_back(layout.AddField("o" + std::to_string(s), 16));
  }
  for (std::size_t s = 0; s < 4; ++s) {
    std::vector<dataplane::ActionOp> prog{
        {dataplane::ActionOp::Kind::kAddFromData, outs[s], 0, 0, 65535}};
    auto table = std::make_unique<dataplane::MatchActionTable>(
        "t" + std::to_string(s), dataplane::MatchKind::kExact,
        std::vector<dataplane::FieldId>{key}, std::vector<int>{8}, prog, 16);
    for (std::uint64_t v = 0; v < 256; ++v) {
      table->AddEntry({.exact_key = {v}, .action_data = {static_cast<std::int64_t>(v)}});
    }
    pipe.PlaceTable(std::move(table), s);
  }
  dataplane::Phv phv(layout);
  std::size_t i = 0;
  for (auto _ : state) {
    phv.Set(key, static_cast<std::int64_t>(i++ % 256));
    benchmark::DoNotOptimize(pipe.Process(phv));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PipelineProcess);

// ---------------------------------------------------------------------------
// Per-call vs batched inference over a lowered model (the acceptance metric
// for the runtime::InferenceEngine: batching must beat per-call Infer).
// ---------------------------------------------------------------------------

const runtime::LoweredModel& MicroLoweredModel() {
  static const runtime::LoweredModel lowered = [] {
    const std::size_t dim = 4;
    const std::size_t n = 3000;
    const auto x = RandomRows(n, dim, 11);
    core::ProgramBuilder b(dim);
    const auto segs = b.Partition(b.input(), 2, 2);
    std::vector<core::ValueId> maps;
    maps.push_back(
        b.Map(segs[0], core::MakeLinear({0.05f, -0.02f, 0.01f, 0.04f}, 2, 2,
                                        {0.5f, -0.5f}),
              32));
    maps.push_back(b.Map(
        segs[1], core::MakeLinear({-0.03f, 0.02f, 0.02f, 0.01f}, 2, 2, {}),
        32));
    const auto sum = b.SumReduce(std::span<const core::ValueId>(maps));
    const auto out = b.Map(sum, core::MakeReLU(2), 32);
    return compiler::CompileToSwitch(b.Finish(out), x, n).lowered;
  }();
  return lowered;
}

void BM_LoweredInferPerCall(benchmark::State& state) {
  const runtime::LoweredModel& lowered = MicroLoweredModel();
  const auto probes = RandomRows(1024, 4, 12);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lowered.Infer(
        std::span<const float>(probes.data() + (i++ % 1024) * 4, 4)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LoweredInferPerCall);

void BM_InferenceEngineBatched(benchmark::State& state) {
  const runtime::LoweredModel& lowered = MicroLoweredModel();
  const auto batch = static_cast<std::size_t>(state.range(0));
  runtime::InferenceEngine engine(lowered, batch);
  const auto probes = RandomRows(batch, 4, 13);
  std::vector<float> out(batch * engine.output_dim());
  for (auto _ : state) {
    engine.Infer(probes, batch, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_InferenceEngineBatched)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

#ifndef PEGASUS_BUILD_TYPE
#define PEGASUS_BUILD_TYPE "unknown"
#endif
#ifndef PEGASUS_GIT_SHA
#define PEGASUS_GIT_SHA "unknown"
#endif

// BENCHMARK_MAIN() plus build provenance: BENCH_micro.json must record how
// it was produced (a Debug-built artifact is not comparable to Release).
int main(int argc, char** argv) {
  benchmark::AddCustomContext("build_type", PEGASUS_BUILD_TYPE);
  benchmark::AddCustomContext("git_sha", PEGASUS_GIT_SHA);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
