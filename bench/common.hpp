// Shared plumbing for the benchmark harness (one binary per paper table /
// figure). Each bench trains the methods it needs on the synthetic
// datasets and prints the same rows/series the paper reports.
//
// Scale knob: PEGASUS_BENCH_SCALE=small|full (default full). `small` cuts
// flows per class so a full pass finishes quickly in CI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/experiment.hpp"
#include "models/autoencoder.hpp"
#include "models/cnn_b.hpp"
#include "models/cnn_l.hpp"
#include "models/cnn_m.hpp"
#include "models/mlp_b.hpp"
#include "models/rnn_b.hpp"

namespace pegasus::bench {

struct BenchScale {
  std::size_t peerrush_flows = 150;
  std::size_t ciciot_flows = 150;
  std::size_t iscx_flows = 100;
  std::size_t epochs_small = 25;  // MLP/RNN/CNN-B/M
  std::size_t epochs_cnnl = 10;
  std::size_t epochs_ae = 50;
};

/// Reads PEGASUS_BENCH_SCALE.
BenchScale ScaleFromEnv();

/// Build provenance stamped into every BENCH_*.json artifact: perf numbers
/// are only comparable across runs when the build type matches, and the sha
/// ties an artifact back to the commit that produced it.
const char* BuildType();
const char* GitSha();

/// The three benchmark datasets, prepared once (§7.1 splits).
std::vector<eval::PreparedDataset> PrepareAll(const BenchScale& scale,
                                              bool with_raw_bytes);

/// Per-method, per-dataset accuracy numbers in Table 5's format.
struct AccuracyCell {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

struct Table5Row {
  std::string method;
  std::size_t input_scale_bits = 0;
  double model_size_kb = 0.0;
  std::vector<AccuracyCell> cells;  // one per dataset
};

/// Trains every Table 5 method on every dataset and evaluates on the test
/// split. Rows come back in the paper's order: Leo, N3IC, MLP-B, BoS,
/// RNN-B, CNN-B, CNN-M, CNN-L.
std::vector<Table5Row> RunTable5(std::vector<eval::PreparedDataset>& data,
                                 const BenchScale& scale);

/// Pretty-prints a Table 5-shaped table.
void PrintTable5(const std::vector<Table5Row>& rows,
                 const std::vector<eval::PreparedDataset>& data,
                 const char* title);

/// Trains just the Pegasus models (for Figure 9) and returns both the
/// float (control-plane) and fuzzy (dataplane) macro-F1.
struct Fig9Cell {
  std::string model;
  std::string dataset;
  double f1_float = 0.0;
  double f1_fuzzy = 0.0;
};

std::vector<Fig9Cell> RunFig9Accuracy(std::vector<eval::PreparedDataset>& data,
                                      const BenchScale& scale);

}  // namespace pegasus::bench
