// Ablation: activation bit-width (design ❸: "full-precision weights with
// fixed-point activations").
//
// Sweeps the fixed-point word width of activations between Map tables.
// Expected shape: binary/2-bit activations lose accuracy sharply (N3IC's
// failure mode); 8+ bits recover the full-precision model — supporting the
// paper's choice of fixed-point over binary.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace pegasus::bench;
  namespace md = pegasus::models;
  namespace ev = pegasus::eval;

  const BenchScale scale = ScaleFromEnv();
  auto prep = pegasus::eval::Prepare(
      pegasus::traffic::PeerRushSpec(scale.peerrush_flows),
      /*with_raw_bytes=*/false);

  std::printf("Ablation: fixed-point activation width vs accuracy "
              "(MLP-B, PeerRush)\n");
  std::printf("%12s %10s %12s\n", "value bits", "F1(fuzzy)", "F1(float)");
  for (int bits : {2, 4, 6, 8, 12, 16, 24}) {
    md::MlpBConfig cfg;
    cfg.epochs = scale.epochs_small;
    cfg.compile.value_bits = bits;
    cfg.compile.max_domain_bits = std::min(10, bits);
    auto m = md::MlpB::Train(prep.stat.train.x, prep.stat.train.labels,
                             prep.stat.train.size(), prep.stat.train.dim,
                             prep.num_classes, cfg);
    const auto& test = prep.stat.test;
    std::vector<std::int32_t> pz(test.size()), pf(test.size());
    for (std::size_t i = 0; i < test.size(); ++i) {
      std::span<const float> row(test.x.data() + i * test.dim, test.dim);
      pz[i] = m->PredictClassFuzzy(row);
      pf[i] = m->PredictClassFloat(row);
    }
    std::printf("%12d %10.4f %12.4f\n", bits,
                ev::Evaluate(test.labels, pz, prep.num_classes).f1,
                ev::Evaluate(test.labels, pf, prep.num_classes).f1);
  }
  return 0;
}
