// End-to-end streaming-serving benchmark: packets/sec through the sharded
// StreamServer for two models (MLP-B on the stat path, CNN-M on the seq
// path) at 1 and 4 shards, single- and multi-threaded — the serving-side
// scaling curve the ROADMAP's "millions of flows" north star needs tracked
// per commit. Writes BENCH_stream.json (argv[1] overrides the path) for the
// CI artifact.
//
// The whole dataset (all splits) is merged into one time-ordered trace so
// the stream carries realistic flow interleaving; accuracy is reported over
// the per-packet decisions as a sanity anchor, not a headline number (train
// flows are part of the stream).
//
// A second section exercises the model lifecycle: the same trace is served
// with a hitless v1 -> v2 hot swap at the midpoint (a retrained MLP-B),
// recording the per-shard swap latency (engine rebuild gap) and the
// throughput *of the run containing the swap* next to the no-swap baseline
// — the "can we push a model without a maintenance window" number.
// tools/compare_index_bench.py --stream condenses these rows into
// BENCH_swap.json.
// A multi-ingest section sweeps the ISSUE 6 scaling curve: ingest x shard
// configs (1x1 up to 4x8) replaying the trace through
// Serve(PartitionedPacketSource&) — digest-disjoint partitions, burst
// rings, per-shard sinks — reporting aggregate pps, scaling efficiency
// against the 1x1 run, and the shed counters (one deliberately overloaded
// row documents the shedding knob). Emitted as "scaling_runs".
// A third section exercises the packet-I/O subsystem: the merged trace is
// exported as a real pcap capture (io::WriteDatasetPcap) and replayed
// straight from the file through PcapPacketSource — as fast as possible in
// ST and MT, and trace-paced at a speedup targeting ~1s of wall time — the
// "can the serving path drink from the wire" numbers. Written separately as
// BENCH_replay.json (CI uploads it with the stream artifact).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common.hpp"
#include "compiler/compiler.hpp"
#include "eval/experiment.hpp"
#include "io/assemble.hpp"
#include "io/replay.hpp"
#include "runtime/stream_server.hpp"

namespace {

namespace ev = pegasus::eval;
namespace rt = pegasus::runtime;
namespace tr = pegasus::traffic;

namespace tel = pegasus::telemetry;

/// Sampling cadence for the bench rows: cheap enough to leave on (the
/// latency_runs section below measures the cost), dense enough for stable
/// p999 over a scale-sized trace.
constexpr std::uint32_t kBenchSampleEvery = 32;

struct RunRow {
  std::string model;
  std::string feature;
  std::size_t shards = 0;
  std::size_t threads = 0;  // 0 = single-threaded driver loop
  std::uint64_t packets = 0;
  std::uint64_t decisions = 0;
  std::uint64_t warmup = 0;
  std::uint64_t evictions = 0;
  std::uint64_t batches = 0;
  double wall_ms = 0.0;
  double pps = 0.0;
  double accuracy = 0.0;
  // End-to-end latency quantiles (sampled 1-in-kBenchSampleEvery), ns.
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  // Per-stage p99, ns (dwell is 0 in single-threaded runs: no ring).
  double lookup_p99_ns = 0.0;
  double extract_p99_ns = 0.0;
  double infer_p99_ns = 0.0;
  double dwell_p99_ns = 0.0;
};

RunRow RunOne(const std::string& name, const rt::LoweredModel& lowered,
              rt::FeatureKind kind,
              const std::vector<tr::TracePacket>& trace,
              std::size_t num_classes, std::size_t shards, bool mt) {
  rt::StreamServerOptions opts;
  opts.num_shards = shards;
  opts.flows_per_shard = 1 << 10;
  opts.feature = kind;
  opts.multithreaded = mt;
  opts.telemetry.sample_every = kBenchSampleEvery;
  rt::StreamServer server(lowered, opts);
  const auto run = ev::ServeTrace(server, trace);

  RunRow row;
  row.model = name;
  row.feature = rt::FeatureKindName(kind);
  row.shards = shards;
  row.threads = mt ? shards : 0;
  row.packets = run.stats.packets;
  row.decisions = run.stats.decisions;
  row.warmup = run.stats.warmup;
  row.evictions = run.stats.table.evictions;
  row.batches = run.stats.batches;
  row.wall_ms = run.wall_ms;
  row.pps = run.packets_per_sec;
  row.accuracy = ev::EvaluateDecisions(run.decisions, num_classes).accuracy;
  const auto& e2e = run.telemetry.stage(tel::Stage::kEndToEnd);
  row.p50_ns = e2e.p50_ns;
  row.p99_ns = e2e.p99_ns;
  row.p999_ns = e2e.p999_ns;
  row.lookup_p99_ns = run.telemetry.stage(tel::Stage::kFlowLookup).p99_ns;
  row.extract_p99_ns =
      run.telemetry.stage(tel::Stage::kFeatureExtract).p99_ns;
  row.infer_p99_ns = run.telemetry.stage(tel::Stage::kInferFlush).p99_ns;
  row.dwell_p99_ns = run.telemetry.stage(tel::Stage::kRingDwell).p99_ns;
  return row;
}

struct SwapRow {
  std::string model;
  std::size_t shards = 0;
  std::size_t threads = 0;
  std::uint64_t packets = 0;
  std::uint64_t decisions = 0;
  std::uint64_t swaps = 0;
  /// Total per-shard serving gap (flush + engine rebuild), ms.
  double swap_latency_ms = 0.0;
  double wall_ms = 0.0;
  double pps = 0.0;
  /// Same-config no-swap throughput, for the degradation ratio.
  double baseline_pps = 0.0;
};

SwapRow RunSwap(const std::string& name,
                std::shared_ptr<const rt::LoweredModel> v1,
                std::shared_ptr<const rt::LoweredModel> v2,
                rt::FeatureKind kind,
                const std::vector<tr::TracePacket>& trace, std::size_t shards,
                bool mt, double baseline_pps) {
  rt::StreamServerOptions opts;
  opts.num_shards = shards;
  opts.flows_per_shard = 1 << 10;
  opts.feature = kind;
  opts.multithreaded = mt;
  rt::StreamServer server(std::move(v1), opts, 1);
  const auto run = ev::ServeTraceWithSwap(server, trace, trace.size() / 2,
                                          std::move(v2), 2);
  SwapRow row;
  row.model = name;
  row.shards = shards;
  row.threads = mt ? shards : 0;
  row.packets = run.stats.packets;
  row.decisions = run.stats.decisions;
  row.swaps = run.stats.swaps;
  row.swap_latency_ms = run.stats.swap_wall_ms;
  row.wall_ms = run.wall_ms;
  row.pps = run.packets_per_sec;
  row.baseline_pps = baseline_pps;
  return row;
}

// ---- O(delta) update latency sweep ----------------------------------------
// Compares the two ways a new model version reaches a serving table:
//   delta  — ApplyDelta the changed entries in place on the sealed table
//            (the per-table patch work StreamServer::SwapModelDelta does;
//            on a switch the update is literally in place);
//   reseal — rebuild the table from the full entry list and Seal() (the
//            full-swap path).
// Each rep patches a fresh Clone() of the base so reps are independent,
// but the clone is harness scaffolding, not update work, and stays
// outside the timed window. Swept over table size x patched-entry count;
// both paths must decide probe keys identically (checksums compared by
// compare_index_bench.py --swap, which fails CI on a mismatch).

struct UpdateRow {
  std::size_t table_entries = 0;
  std::size_t patched_entries = 0;
  double delta_ms = 0.0;
  double reseal_ms = 0.0;
  double speedup = 0.0;
  std::uint64_t bytes_pushed = 0;
  std::uint64_t checksum_delta = 0;
  std::uint64_t checksum_reseal = 0;
};

namespace dp = pegasus::dataplane;

std::uint64_t LookupChecksum(const dp::MatchActionTable& table,
                             const dp::PhvLayout& layout,
                             const std::vector<dp::FieldId>& keys,
                             std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  dp::Phv phv(layout);
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (int probe = 0; probe < 512; ++probe) {
    for (const dp::FieldId k : keys) {
      phv.Set(k, static_cast<std::int64_t>(rng() & 0xffff));
    }
    const auto hit = table.Lookup(phv);
    h ^= hit ? static_cast<std::uint64_t>(*hit) + 1 : 0;
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<UpdateRow> RunUpdateSweep() {
  std::vector<UpdateRow> out;
  std::mt19937_64 rng(404);
  const std::vector<int> widths{16, 16};
  std::vector<dp::ActionOp> prog;  // filled per layout below
  for (const std::size_t n :
       {std::size_t{64}, std::size_t{256}, std::size_t{1024},
        std::size_t{4096}}) {
    dp::PhvLayout layout;
    std::vector<dp::FieldId> keys;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      keys.push_back(layout.AddField("k" + std::to_string(i), widths[i]));
    }
    const dp::FieldId outf = layout.AddField("o", 32);
    prog = {{dp::ActionOp::Kind::kSetFromData, outf, 0, 0, -1}};

    std::vector<dp::TableEntry> entries;
    for (std::size_t e = 0; e < n; ++e) {
      dp::TableEntry entry;
      for (int w : widths) {
        const std::uint64_t dmax = (1ull << w) - 1;
        // Mix exact-value rules with wildcarded ones; at least one full
        // mask per field keeps the whole key space chunk-covered, so any
        // patch is absorbable in place.
        entry.ternary.push_back(rng() % 4 == 0
                                    ? dp::TernaryRule{rng() & dmax,
                                                      rng() & dmax}
                                    : dp::TernaryRule{rng() & dmax, dmax});
      }
      entry.priority = static_cast<int>(rng() % 4);
      entry.action_data = {static_cast<std::int64_t>(e)};
      entries.push_back(entry);
    }
    auto base = std::make_unique<dp::MatchActionTable>(
        "u", dp::MatchKind::kTernary, keys, widths, prog, 32);
    for (const auto& e : entries) base->AddEntry(e);
    base->Seal();

    std::vector<std::size_t> deltas{1, std::max<std::size_t>(1, n / 100),
                                    std::max<std::size_t>(1, n / 10), n};
    deltas.erase(std::unique(deltas.begin(), deltas.end()), deltas.end());
    for (const std::size_t k : deltas) {
      // k distinct entries get new match values + action words.
      std::vector<dp::EntryPatch> patches;
      auto mutated = entries;
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t e = (j * 16777619u) % n;  // spread, distinct for k<=n
        dp::EntryPatch patch;
        patch.entry_index = e;
        patch.priority = entries[e].priority;
        for (int w : widths) {
          const std::uint64_t dmax = (1ull << w) - 1;
          patch.ternary.push_back({rng() & dmax, dmax});
        }
        patch.action_data = {static_cast<std::int64_t>(rng() % 100000)};
        mutated[e].ternary = patch.ternary;
        mutated[e].action_data = patch.action_data;
        patches.push_back(std::move(patch));
      }

      UpdateRow row;
      row.table_entries = n;
      row.patched_entries = k;
      constexpr int kReps = 5;
      std::unique_ptr<dp::MatchActionTable> patched;
      std::unique_ptr<dp::MatchActionTable> resealed;
      for (int rep = 0; rep < kReps; ++rep) {
        auto clone = base->Clone();  // fresh base per rep, untimed
        auto t0 = std::chrono::steady_clock::now();
        row.bytes_pushed = clone->ApplyDelta(patches);
        auto t1 = std::chrono::steady_clock::now();
        const double delta_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (rep == 0 || delta_ms < row.delta_ms) row.delta_ms = delta_ms;
        patched = std::move(clone);

        t0 = std::chrono::steady_clock::now();
        auto fresh = std::make_unique<dp::MatchActionTable>(
            "u", dp::MatchKind::kTernary, keys, widths, prog, 32);
        for (const auto& e : mutated) fresh->AddEntry(e);
        fresh->Seal();
        t1 = std::chrono::steady_clock::now();
        const double reseal_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (rep == 0 || reseal_ms < row.reseal_ms) row.reseal_ms = reseal_ms;
        resealed = std::move(fresh);
      }
      row.speedup = row.delta_ms > 0.0 ? row.reseal_ms / row.delta_ms : 0.0;
      row.checksum_delta = LookupChecksum(*patched, layout, keys, 1000 + n);
      row.checksum_reseal = LookupChecksum(*resealed, layout, keys, 1000 + n);
      out.push_back(row);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pegasus;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_stream.json";
  const bench::BenchScale scale = bench::ScaleFromEnv();

  auto prep = eval::Prepare(traffic::PeerRushSpec(scale.peerrush_flows),
                            /*with_raw_bytes=*/false);
  std::printf("dataset: %s, %zu flows, %zu classes\n", prep.name.c_str(),
              prep.dataset.flows.size(), prep.num_classes);

  // ---- models: one stat-path, one seq-path -------------------------------
  models::MlpBConfig mlp_cfg;
  mlp_cfg.epochs = scale.epochs_small;
  auto mlp = models::MlpB::Train(prep.stat.train.x, prep.stat.train.labels,
                                 prep.stat.train.size(), prep.stat.train.dim,
                                 prep.num_classes, mlp_cfg);
  models::CnnMConfig cnn_cfg;
  cnn_cfg.epochs = scale.epochs_small;
  auto cnn = models::CnnM::Train(prep.seq.train.x, prep.seq.train.labels,
                                 prep.seq.train.size(), prep.seq.train.dim,
                                 prep.num_classes, cnn_cfg);

  runtime::LoweringOptions mlp_lopts;
  mlp_lopts.stateful_bits_per_flow =
      runtime::OnlineFlowStateSpec(runtime::FeatureKind::kStat).BitsPerFlow();
  // Shared so the hot-swap section below can serve the same v1 artifact.
  auto mlp_lowered = std::make_shared<const runtime::LoweredModel>(
      compiler::PlaceOnSwitch(mlp->Compiled(), mlp_lopts));
  runtime::LoweringOptions cnn_lopts;
  cnn_lopts.stateful_bits_per_flow =
      runtime::OnlineFlowStateSpec(runtime::FeatureKind::kSeq).BitsPerFlow();
  auto cnn_lowered = compiler::PlaceOnSwitch(cnn->Compiled(), cnn_lopts);

  // ---- one merged trace over every flow ----------------------------------
  const auto trace = traffic::MergeTrace(prep.dataset.flows);
  std::printf("merged trace: %zu packets over %zu flows\n\n", trace.size(),
              prep.dataset.flows.size());

  struct ModelUnderTest {
    const char* name;
    const runtime::LoweredModel* lowered;
    runtime::FeatureKind kind;
  };
  const ModelUnderTest models[] = {
      {"MLP-B", mlp_lowered.get(), runtime::FeatureKind::kStat},
      {"CNN-M", &cnn_lowered, runtime::FeatureKind::kSeq},
  };

  std::vector<RunRow> rows;
  std::printf("%-7s %-5s %7s %8s %10s %12s %10s %9s %9s %9s\n", "Model",
              "feat", "shards", "threads", "wall ms", "pkts/s", "pps/shard",
              "acc", "p50 us", "p99 us");
  for (const auto& m : models) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      for (const bool mt : {false, true}) {
        const auto row = RunOne(m.name, *m.lowered, m.kind, trace,
                                prep.num_classes, shards, mt);
        std::printf(
            "%-7s %-5s %7zu %8zu %10.1f %12.0f %10.0f %9.3f %9.2f %9.2f\n",
            row.model.c_str(), row.feature.c_str(), row.shards, row.threads,
            row.wall_ms, row.pps, row.pps / static_cast<double>(row.shards),
            row.accuracy, row.p50_ns / 1e3, row.p99_ns / 1e3);
        rows.push_back(row);
      }
    }
  }

  // ---- model lifecycle: hitless hot swap ---------------------------------
  // Retrain MLP-B (more epochs => moved tables) and push it mid-stream.
  models::MlpBConfig mlp2_cfg;
  mlp2_cfg.epochs = scale.epochs_small * 2;
  auto mlp2 = models::MlpB::Train(prep.stat.train.x, prep.stat.train.labels,
                                  prep.stat.train.size(),
                                  prep.stat.train.dim, prep.num_classes,
                                  mlp2_cfg);
  auto mlp_v2 = std::make_shared<const runtime::LoweredModel>(
      compiler::PlaceOnSwitch(mlp2->Compiled(), mlp_lopts));

  std::vector<SwapRow> swap_rows;
  std::printf("\nhot swap (v1 -> v2 at trace midpoint):\n");
  std::printf("%-7s %7s %8s %14s %12s %12s %9s\n", "Model", "shards",
              "threads", "swap gap ms", "pkts/s", "baseline", "ratio");
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    for (const bool mt : {false, true}) {
      double baseline = 0.0;
      for (const auto& r : rows) {
        if (r.model == "MLP-B" && r.shards == shards &&
            (r.threads > 0) == mt) {
          baseline = r.pps;
        }
      }
      const auto row = RunSwap("MLP-B", mlp_lowered, mlp_v2,
                               runtime::FeatureKind::kStat, trace, shards,
                               mt, baseline);
      std::printf("%-7s %7zu %8zu %14.3f %12.0f %12.0f %9.3f\n",
                  row.model.c_str(), row.shards, row.threads,
                  row.swap_latency_ms, row.pps, row.baseline_pps,
                  row.baseline_pps > 0.0 ? row.pps / row.baseline_pps : 0.0);
      swap_rows.push_back(row);
    }
  }

  // ---- O(delta) update latency vs delta size -----------------------------
  const auto update_rows = RunUpdateSweep();
  std::printf("\nO(delta) table update (in-place patch vs rebuild+reseal):\n");
  std::printf("%9s %9s %12s %12s %9s %8s %6s\n", "entries", "patched",
              "delta ms", "reseal ms", "speedup", "bytes", "match");
  for (const auto& r : update_rows) {
    std::printf("%9zu %9zu %12.4f %12.4f %8.1fx %8llu %6s\n",
                r.table_entries, r.patched_entries, r.delta_ms, r.reseal_ms,
                r.speedup, static_cast<unsigned long long>(r.bytes_pushed),
                r.checksum_delta == r.checksum_reseal ? "ok" : "FAIL");
  }

  // ---- multi-ingest thread scaling ---------------------------------------
  // The ISSUE 6 headline: aggregate pps as ingest x shard grows, on the
  // MLP-B stat path. Each config replays the same merged trace through
  // Serve(PartitionedPacketSource&) — N ingest threads over digest-disjoint
  // partitions, burst rings, per-shard sinks. Efficiency is pps relative to
  // the 1-shard/1-ingest run scaled by the shard count (1.0 = perfectly
  // linear); on a box with fewer cores than ingest+shards the curve flattens
  // by construction — read it on the CI runner.
  struct ScalingRow {
    std::size_t ingest = 0;
    std::size_t shards = 0;
    std::string pin_policy;
    bool shed = false;
    std::uint64_t offered = 0;  // packets presented at ingest
    std::uint64_t packets = 0;  // packets actually served
    std::uint64_t decisions = 0;
    std::uint64_t shed_ring_full = 0;
    std::uint64_t shed_misrouted = 0;
    double shed_rate = 0.0;
    double wall_ms = 0.0;
    double pps = 0.0;
    double efficiency = 0.0;
  };
  std::vector<ScalingRow> scaling_rows;
  auto run_scaling = [&](std::size_t ingest, std::size_t shards, bool shed,
                         std::size_t queue_capacity,
                         rt::EscalationPolicy escalation,
                         rt::CpuPinPolicy pin, double base_pps) {
    rt::StreamServerOptions opts;
    opts.num_shards = shards;
    opts.flows_per_shard = 1 << 10;
    opts.feature = rt::FeatureKind::kStat;
    opts.multithreaded = true;
    opts.num_ingest = ingest;
    opts.queue_capacity = queue_capacity;
    opts.shed = shed;
    opts.escalation = escalation;
    opts.pin_policy = pin;
    rt::StreamServer server(mlp_lowered, opts, 1);
    const auto run = ev::ServeTracePartitioned(server, trace);
    ScalingRow row;
    row.ingest = ingest;
    row.shards = shards;
    row.pin_policy = rt::CpuPinPolicyName(pin);
    row.shed = shed;
    row.packets = run.stats.packets;
    row.offered = run.stats.packets + run.stats.shed.total();
    row.decisions = run.stats.decisions;
    row.shed_ring_full = run.stats.shed.ring_full;
    row.shed_misrouted = run.stats.shed.misrouted;
    row.shed_rate = row.offered > 0
                        ? static_cast<double>(run.stats.shed.total()) /
                              static_cast<double>(row.offered)
                        : 0.0;
    row.wall_ms = run.wall_ms;
    row.pps = run.packets_per_sec;
    row.efficiency =
        base_pps > 0.0
            ? row.pps / (base_pps * static_cast<double>(shards))
            : 1.0;
    scaling_rows.push_back(row);
    return row;
  };

  // Every ingest x shard config runs unpinned (kNone) and pinned
  // (kCompact): the pinned-vs-unpinned efficiency delta is the thread-
  // placement payoff (both efficiencies are against the same unpinned 1x1
  // base, so the two rows of one config are directly comparable). On a
  // box with fewer cores than threads pinning cannot help — read the
  // delta on the CI runner.
  std::printf("\nmulti-ingest scaling (MLP-B, burst rings, shed off):\n");
  std::printf("%7s %7s %-8s %10s %12s %11s %10s\n", "ingest", "shards",
              "pin", "wall ms", "pkts/s", "efficiency", "shed rate");
  double base_pps = 0.0;
  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const std::size_t ingest = std::max<std::size_t>(1, shards / 2);
    for (const rt::CpuPinPolicy pin :
         {rt::CpuPinPolicy::kNone, rt::CpuPinPolicy::kCompact}) {
      const auto row = run_scaling(ingest, shards, /*shed=*/false, 1 << 12,
                                   rt::EscalationPolicy{}, pin, base_pps);
      if (shards == 1 && pin == rt::CpuPinPolicy::kNone) base_pps = row.pps;
      std::printf("%7zu %7zu %-8s %10.1f %12.0f %11.2f %10.4f\n", row.ingest,
                  row.shards, row.pin_policy.c_str(), row.wall_ms, row.pps,
                  row.efficiency, row.shed_rate);
    }
  }
  // Overload demo: a deliberately tiny ring with an immediate (zero-budget)
  // escalation ladder sheds under burst pressure instead of stalling ingest
  // — the counters land in the artifact so the sweep documents the knob.
  {
    const auto row = run_scaling(/*ingest=*/1, /*shards=*/1, /*shed=*/true,
                                 /*queue_capacity=*/64,
                                 rt::EscalationPolicy::Immediate(),
                                 rt::CpuPinPolicy::kNone, base_pps);
    std::printf("%7zu %7zu %-8s %10.1f %12.0f %11s %10.4f  (shed demo)\n",
                row.ingest, row.shards, row.pin_policy.c_str(), row.wall_ms,
                row.pps, "-", row.shed_rate);
  }

  // ---- packet I/O: pcap replay -------------------------------------------
  // Export the same merged trace as a capture (identical interleaving: the
  // default MergeOptions seed matches the in-memory trace above), then
  // serve straight from the file.
  const std::string dir =
      out_path.find('/') != std::string::npos
          ? out_path.substr(0, out_path.rfind('/') + 1)
          : std::string();
  const std::string pcap_path = dir + "bench_replay.pcap";
  const std::string replay_path = dir + "BENCH_replay.json";
  io::PcapExportOptions eopts;
  eopts.merged = true;
  const auto pcap_records =
      io::WriteDatasetPcap(pcap_path, prep.dataset, eopts);
  const auto labeler = io::ImportOptionsFor(prep.dataset).labeler;
  const std::uint64_t span_us =
      trace.empty() ? 0 : trace.back().ts_us - trace.front().ts_us;

  struct ReplayRow {
    std::string clock;
    double speedup = 0.0;  // 0 = afap
    std::size_t shards = 0;
    std::size_t threads = 0;
    std::uint64_t packets = 0;
    std::uint64_t decisions = 0;
    double wall_ms = 0.0;
    double pps = 0.0;
    std::uint64_t trace_span_us = 0;
    std::uint64_t max_lag_us = 0;
  };
  std::vector<ReplayRow> replay_rows;
  auto run_replay = [&](io::ReplayOptions ropts, std::size_t shards,
                        bool mt) {
    io::PcapPacketSource source(pcap_path, labeler);
    io::TraceReplayer replayer(source, ropts);
    rt::StreamServerOptions opts;
    opts.num_shards = shards;
    opts.flows_per_shard = 1 << 10;
    opts.feature = rt::FeatureKind::kStat;
    opts.multithreaded = mt;
    rt::StreamServer server(mlp_lowered, opts, 1);
    const auto run = ev::ServeTrace(server, replayer);
    ReplayRow row;
    row.clock = io::ReplayClockName(ropts.clock);
    row.speedup =
        ropts.clock == io::ReplayClock::kSpeedup ? ropts.speedup : 0.0;
    row.shards = shards;
    row.threads = mt ? shards : 0;
    row.packets = run.stats.packets;
    row.decisions = run.stats.decisions;
    row.wall_ms = run.wall_ms;
    row.pps = run.packets_per_sec;
    row.trace_span_us = replayer.stats().TraceSpanUs();
    row.max_lag_us = replayer.stats().max_lag_us;
    replay_rows.push_back(row);
    return row;
  };

  std::printf("\npcap replay (%s, %llu records, %.2f s span):\n",
              pcap_path.c_str(),
              static_cast<unsigned long long>(pcap_records),
              static_cast<double>(span_us) / 1e6);
  std::printf("%-9s %9s %7s %8s %10s %12s %11s\n", "clock", "speedup",
              "shards", "threads", "wall ms", "pkts/s", "max lag us");
  io::ReplayOptions afap;
  // Paced replay targets ~1s of wall time regardless of the trace span.
  io::ReplayOptions paced;
  paced.clock = io::ReplayClock::kSpeedup;
  paced.speedup = std::max(1.0, static_cast<double>(span_us) / 1e6);
  for (const auto& [ropts, shards, mt] :
       {std::tuple{afap, std::size_t{1}, false},
        std::tuple{afap, std::size_t{4}, true},
        std::tuple{paced, std::size_t{1}, false}}) {
    const auto row = run_replay(ropts, shards, mt);
    std::printf("%-9s %9.1f %7zu %8zu %10.1f %12.0f %11llu\n",
                row.clock.c_str(), row.speedup, row.shards, row.threads,
                row.wall_ms, row.pps,
                static_cast<unsigned long long>(row.max_lag_us));
  }

  // ---- telemetry cost + latency quantiles --------------------------------
  // Three arms on the same config (MLP-B stat, 4 shards, MT, best of 3):
  //   off      — server built without telemetry (the baseline);
  //   disabled — telemetry attached but sampling off (the compiled-in cost;
  //              compare_index_bench.py --latency gates the off/disabled
  //              ratio at 2% in CI);
  //   sampled  — 1-in-32 sampling, what every bench row above pays.
  // The sampled arm also leaves the full TelemetrySnapshot JSON artifact,
  // and a separate swap+shed run dumps the flight recorder for Perfetto.
  const std::string telemetry_path = dir + "BENCH_telemetry.json";
  const std::string trace_path = dir + "BENCH_trace.json";
  struct LatencyRow {
    std::string mode;
    double wall_ms = 0.0;
    double pps = 0.0;
    double p50_ns = 0.0;
    double p99_ns = 0.0;
    double p999_ns = 0.0;
  };
  std::vector<LatencyRow> latency_rows(3);
  // Arms interleave inside the rep loop and each keeps its best rep: a
  // machine-load drift mid-section biases every arm equally instead of
  // landing on one, which is what lets the CI ratio gate sit at 2%.
  constexpr int kLatencyReps = 5;
  const std::tuple<const char*, bool, std::uint32_t> kArms[3] = {
      {"off", false, 0},
      {"disabled", true, 0},
      {"sampled", false, kBenchSampleEvery},
  };
  for (int rep = 0; rep < kLatencyReps; ++rep) {
    for (int arm = 0; arm < 3; ++arm) {
      const auto& [mode, attach, every] = kArms[arm];
      rt::StreamServerOptions opts;
      opts.num_shards = 4;
      opts.flows_per_shard = 1 << 10;
      opts.feature = rt::FeatureKind::kStat;
      opts.multithreaded = true;
      opts.telemetry.attach = attach;
      opts.telemetry.sample_every = every;
      rt::StreamServer server(mlp_lowered, opts, 1);
      const auto run = ev::ServeTrace(server, trace);
      LatencyRow& row = latency_rows[arm];
      row.mode = mode;
      if (run.packets_per_sec > row.pps) {
        row.wall_ms = run.wall_ms;
        row.pps = run.packets_per_sec;
        const auto& e2e = run.telemetry.stage(tel::Stage::kEndToEnd);
        row.p50_ns = e2e.p50_ns;
        row.p99_ns = e2e.p99_ns;
        row.p999_ns = e2e.p999_ns;
      }
      if (every != 0 && rep + 1 == kLatencyReps) {
        std::ofstream tf(telemetry_path);
        tel::WriteJson(run.telemetry, tf);
      }
    }
  }
  std::printf("\ntelemetry cost (MLP-B, 4 shards MT, best of %d):\n",
              kLatencyReps);
  std::printf("%-9s %10s %12s %8s %9s %9s %9s\n", "mode", "wall ms",
              "pkts/s", "vs off", "p50 us", "p99 us", "p999 us");
  for (const auto& r : latency_rows) {
    std::printf("%-9s %10.1f %12.0f %8.3f %9.2f %9.2f %9.2f\n",
                r.mode.c_str(), r.wall_ms, r.pps,
                latency_rows[0].pps > 0.0 ? r.pps / latency_rows[0].pps
                                          : 0.0,
                r.p50_ns / 1e3, r.p99_ns / 1e3, r.p999_ns / 1e3);
  }
  std::printf("wrote %s\n", telemetry_path.c_str());

  // Flight-recorder artifact: an MT run with a midpoint hot swap on a
  // deliberately tiny ring, so the dump shows swap begin/apply/publish AND
  // shed markers. tools/trace_to_chrome.py turns it into a Perfetto trace.
  {
    rt::StreamServerOptions opts;
    opts.num_shards = 4;
    opts.flows_per_shard = 1 << 10;
    opts.feature = rt::FeatureKind::kStat;
    opts.multithreaded = true;
    // Moderate overload: small enough to shed visibly under burst
    // pressure, big enough that packet spans still dominate the dump.
    opts.queue_capacity = 1 << 9;
    opts.burst = 32;
    opts.shed = true;
    opts.escalation = rt::EscalationPolicy::Immediate();
    opts.telemetry.sample_every = kBenchSampleEvery;
    opts.telemetry.trace_events = 4096;
    rt::StreamServer server(mlp_lowered, opts, 1);
    (void)ev::ServeTraceWithSwap(server, trace, trace.size() / 2, mlp_v2, 2);
    std::ofstream tf(trace_path);
    server.WriteTrace(tf);
    std::printf("wrote %s (%zu flight-recorder events; view with "
                "tools/trace_to_chrome.py)\n",
                trace_path.c_str(), server.DumpTrace().size());
  }

  // ---- scaling curve ------------------------------------------------------
  std::printf("\nscaling (multi-threaded, 4 vs 1 shard speedup):\n");
  for (const auto& m : models) {
    double pps1 = 0.0, pps4 = 0.0;
    for (const auto& r : rows) {
      if (r.model != m.name || r.threads == 0) continue;
      if (r.shards == 1) pps1 = r.pps;
      if (r.shards == 4) pps4 = r.pps;
    }
    std::printf("  %-7s %.2fx\n", m.name, pps1 > 0.0 ? pps4 / pps1 : 0.0);
  }

  // ---- JSON artifact ------------------------------------------------------
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"stream\",\n  \"build_type\": \"%s\",\n"
               "  \"git_sha\": \"%s\",\n  \"dataset\": \"%s\",\n"
               "  \"trace_packets\": %zu,\n  \"runs\": [\n",
               bench::BuildType(), bench::GitSha(), prep.name.c_str(),
               trace.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RunRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"model\": \"%s\", \"feature\": \"%s\", \"shards\": %zu, "
        "\"threads\": %zu, \"packets\": %llu, \"decisions\": %llu, "
        "\"warmup\": %llu, \"evictions\": %llu, \"batches\": %llu, "
        "\"wall_ms\": %.3f, \"packets_per_sec\": %.1f, "
        "\"packets_per_sec_per_shard\": %.1f, \"accuracy\": %.4f, "
        "\"latency_p50_ns\": %.0f, \"latency_p99_ns\": %.0f, "
        "\"latency_p999_ns\": %.0f, \"lookup_p99_ns\": %.0f, "
        "\"extract_p99_ns\": %.0f, \"infer_flush_p99_ns\": %.0f, "
        "\"ring_dwell_p99_ns\": %.0f}%s\n",
        r.model.c_str(), r.feature.c_str(), r.shards, r.threads,
        static_cast<unsigned long long>(r.packets),
        static_cast<unsigned long long>(r.decisions),
        static_cast<unsigned long long>(r.warmup),
        static_cast<unsigned long long>(r.evictions),
        static_cast<unsigned long long>(r.batches), r.wall_ms, r.pps,
        r.pps / static_cast<double>(r.shards), r.accuracy, r.p50_ns,
        r.p99_ns, r.p999_ns, r.lookup_p99_ns, r.extract_p99_ns,
        r.infer_p99_ns, r.dwell_p99_ns,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"swap_runs\": [\n");
  for (std::size_t i = 0; i < swap_rows.size(); ++i) {
    const SwapRow& r = swap_rows[i];
    std::fprintf(
        f,
        "    {\"model\": \"%s\", \"shards\": %zu, \"threads\": %zu, "
        "\"packets\": %llu, \"decisions\": %llu, \"swaps\": %llu, "
        "\"swap_latency_ms\": %.4f, \"wall_ms\": %.3f, "
        "\"packets_per_sec\": %.1f, \"baseline_packets_per_sec\": %.1f}%s\n",
        r.model.c_str(), r.shards, r.threads,
        static_cast<unsigned long long>(r.packets),
        static_cast<unsigned long long>(r.decisions),
        static_cast<unsigned long long>(r.swaps), r.swap_latency_ms,
        r.wall_ms, r.pps, r.baseline_pps,
        i + 1 < swap_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"update_runs\": [\n");
  for (std::size_t i = 0; i < update_rows.size(); ++i) {
    const UpdateRow& r = update_rows[i];
    std::fprintf(
        f,
        "    {\"table_entries\": %zu, \"patched_entries\": %zu, "
        "\"delta_ms\": %.5f, \"reseal_ms\": %.5f, \"speedup\": %.2f, "
        "\"bytes_pushed\": %llu, \"checksum_delta\": %llu, "
        "\"checksum_reseal\": %llu}%s\n",
        r.table_entries, r.patched_entries, r.delta_ms, r.reseal_ms,
        r.speedup, static_cast<unsigned long long>(r.bytes_pushed),
        static_cast<unsigned long long>(r.checksum_delta),
        static_cast<unsigned long long>(r.checksum_reseal),
        i + 1 < update_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"scaling_runs\": [\n");
  for (std::size_t i = 0; i < scaling_rows.size(); ++i) {
    const ScalingRow& r = scaling_rows[i];
    std::fprintf(
        f,
        "    {\"ingest\": %zu, \"shards\": %zu, \"pin_policy\": \"%s\", "
        "\"shed\": %s, "
        "\"offered\": %llu, \"packets\": %llu, \"decisions\": %llu, "
        "\"shed_ring_full\": %llu, \"shed_misrouted\": %llu, "
        "\"shed_rate\": %.6f, \"wall_ms\": %.3f, "
        "\"packets_per_sec\": %.1f, \"scaling_efficiency\": %.4f}%s\n",
        r.ingest, r.shards, r.pin_policy.c_str(), r.shed ? "true" : "false",
        static_cast<unsigned long long>(r.offered),
        static_cast<unsigned long long>(r.packets),
        static_cast<unsigned long long>(r.decisions),
        static_cast<unsigned long long>(r.shed_ring_full),
        static_cast<unsigned long long>(r.shed_misrouted), r.shed_rate,
        r.wall_ms, r.pps, r.efficiency,
        i + 1 < scaling_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"latency_runs\": [\n");
  for (std::size_t i = 0; i < latency_rows.size(); ++i) {
    const LatencyRow& r = latency_rows[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"sample_every\": %u, \"wall_ms\": %.3f, "
        "\"packets_per_sec\": %.1f, \"latency_p50_ns\": %.0f, "
        "\"latency_p99_ns\": %.0f, \"latency_p999_ns\": %.0f}%s\n",
        r.mode.c_str(), r.mode == "sampled" ? kBenchSampleEvery : 0u,
        r.wall_ms, r.pps, r.p50_ns, r.p99_ns, r.p999_ns,
        i + 1 < latency_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  // ---- replay JSON artifact ----------------------------------------------
  FILE* rf = std::fopen(replay_path.c_str(), "w");
  if (rf == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", replay_path.c_str());
    return 1;
  }
  std::fprintf(rf,
               "{\n  \"bench\": \"replay\",\n  \"build_type\": \"%s\",\n"
               "  \"git_sha\": \"%s\",\n  \"dataset\": \"%s\",\n"
               "  \"pcap_records\": %llu,\n  \"runs\": [\n",
               bench::BuildType(), bench::GitSha(), prep.name.c_str(),
               static_cast<unsigned long long>(pcap_records));
  for (std::size_t i = 0; i < replay_rows.size(); ++i) {
    const ReplayRow& r = replay_rows[i];
    std::fprintf(
        rf,
        "    {\"clock\": \"%s\", \"speedup\": %.1f, \"shards\": %zu, "
        "\"threads\": %zu, \"packets\": %llu, \"decisions\": %llu, "
        "\"wall_ms\": %.3f, \"packets_per_sec\": %.1f, "
        "\"trace_span_us\": %llu, \"max_lag_us\": %llu}%s\n",
        r.clock.c_str(), r.speedup, r.shards, r.threads,
        static_cast<unsigned long long>(r.packets),
        static_cast<unsigned long long>(r.decisions), r.wall_ms, r.pps,
        static_cast<unsigned long long>(r.trace_span_us),
        static_cast<unsigned long long>(r.max_lag_us),
        i + 1 < replay_rows.size() ? "," : "");
  }
  std::fprintf(rf, "  ]\n}\n");
  std::fclose(rf);
  std::printf("wrote %s\n", replay_path.c_str());
  return 0;
}
