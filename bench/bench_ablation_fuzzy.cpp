// Ablation: fuzzy-matching budget (clustering-tree leaves per Map) vs
// accuracy and TCAM cost (design §4.2).
//
// Expected shape: accuracy rises steeply then saturates ("diminishing
// returns due to feature saturation"), while TCAM grows roughly linearly
// in the leaf count — the dial Pegasus turns to trade resources for
// fidelity.
#include <cstdio>

#include "common.hpp"
#include "compiler/compiler.hpp"
#include "runtime/lowering.hpp"

int main() {
  using namespace pegasus::bench;
  namespace md = pegasus::models;
  namespace ev = pegasus::eval;

  const BenchScale scale = ScaleFromEnv();
  auto prep = pegasus::eval::Prepare(
      pegasus::traffic::PeerRushSpec(scale.peerrush_flows),
      /*with_raw_bytes=*/false);
  const pegasus::dataplane::SwitchModel sw;

  std::printf("Ablation: fuzzy leaves per Map vs accuracy and TCAM "
              "(MLP-B, PeerRush)\n");
  std::printf("%8s %10s %12s %12s %10s\n", "leaves", "F1(fuzzy)", "F1(float)",
              "TCAM bits", "TCAM %%");
  for (std::size_t leaves : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    md::MlpBConfig cfg;
    cfg.epochs = scale.epochs_small;
    cfg.fuzzy_leaves = leaves;
    auto m = md::MlpB::Train(prep.stat.train.x, prep.stat.train.labels,
                             prep.stat.train.size(), prep.stat.train.dim,
                             prep.num_classes, cfg);
    const auto& test = prep.stat.test;
    std::vector<std::int32_t> pz(test.size()), pf(test.size());
    for (std::size_t i = 0; i < test.size(); ++i) {
      std::span<const float> row(test.x.data() + i * test.dim, test.dim);
      pz[i] = m->PredictClassFuzzy(row);
      pf[i] = m->PredictClassFloat(row);
    }
    const double f1z = ev::Evaluate(test.labels, pz, prep.num_classes).f1;
    const double f1f = ev::Evaluate(test.labels, pf, prep.num_classes).f1;
    const auto lowered = pegasus::compiler::PlaceOnSwitch(m->Compiled());
    const auto rep = lowered.Report();
    std::printf("%8zu %10.4f %12.4f %12zu %9.2f%%\n", leaves, f1z, f1f,
                rep.tcam_bits, rep.TcamPct(sw));
  }
  return 0;
}
