// Ablation: Primitive Fusion levels (design §4.3, Figure 5).
//
// Compares the same workload at three fusion levels:
//   none     — every DL operator is its own Map (Figure 5 "initial");
//   basic    — Linear Reordering + Map merging (Figure 5 ❶);
//   advanced — NAM-style restructuring: one Map per segment (Figure 5 ❸,
//              realized by CNN-M's architecture).
//
// Expected shape: table count (lookups) drops sharply with fusion; with
// advanced fusion the model can grow ~80x in parameters while using fewer
// tables and stages than the unfused baseline.
#include <cstdio>

#include "common.hpp"
#include "compiler/compiler.hpp"
#include "core/fusion.hpp"
#include "runtime/lowering.hpp"

int main() {
  using namespace pegasus::bench;
  namespace md = pegasus::models;
  namespace ev = pegasus::eval;

  const BenchScale scale = ScaleFromEnv();
  auto prep = pegasus::eval::Prepare(
      pegasus::traffic::PeerRushSpec(scale.peerrush_flows),
      /*with_raw_bytes=*/false);
  const std::size_t nc = prep.num_classes;

  std::printf("Ablation: Primitive Fusion (PeerRush)\n");
  std::printf("%-28s %8s %8s %10s %10s\n", "Configuration", "tables",
              "stages", "size(Kb)", "F1(fuzzy)");

  auto eval_seq = [&](const md::TrainedModel& m) {
    const auto& test = prep.seq.test;
    std::vector<std::int32_t> p(test.size());
    for (std::size_t i = 0; i < test.size(); ++i) {
      p[i] = m.PredictClassFuzzy(
          std::span<const float>(test.x.data() + i * test.dim, test.dim));
    }
    return ev::Evaluate(test.labels, p, nc).f1;
  };
  auto eval_stat = [&](const md::TrainedModel& m) {
    const auto& test = prep.stat.test;
    std::vector<std::int32_t> p(test.size());
    for (std::size_t i = 0; i < test.size(); ++i) {
      p[i] = m.PredictClassFuzzy(
          std::span<const float>(test.x.data() + i * test.dim, test.dim));
    }
    return ev::Evaluate(test.labels, p, nc).f1;
  };

  // Basic fusion: MLP-B as shipped (FuseBasic runs inside Train); its
  // FusionStats expose the unfused table count.
  {
    md::MlpBConfig cfg;
    cfg.epochs = scale.epochs_small;
    auto m = md::MlpB::Train(prep.stat.train.x, prep.stat.train.labels,
                             prep.stat.train.size(), prep.stat.train.dim, nc,
                             cfg);
    const auto lowered = pegasus::compiler::PlaceOnSwitch(m->Compiled());
    std::printf("%-28s %8zu %8s %10.1f %10s  (Figure 5 'initial')\n",
                "MLP-B, no fusion", m->fusion_stats().maps_before, "-",
                m->ModelSizeKb(), "-");
    std::printf("%-28s %8zu %8zu %10.1f %10.4f\n", "MLP-B, basic fusion",
                m->fusion_stats().maps_after, lowered.StagesUsed(),
                m->ModelSizeKb(), eval_stat(*m));
  }
  // CNN-B (basic) vs CNN-M (advanced) — the Table 6 comparison.
  {
    md::CnnBConfig cfg;
    cfg.epochs = scale.epochs_small;
    auto m = md::CnnB::Train(prep.seq.train.x, prep.seq.train.labels,
                             prep.seq.train.size(), prep.seq.train.dim, nc,
                             cfg);
    const auto lowered = pegasus::compiler::PlaceOnSwitch(m->Compiled());
    std::printf("%-28s %8zu %8zu %10.1f %10.4f\n", "CNN-B, basic fusion",
                m->Compiled().NumTables(), lowered.StagesUsed(),
                m->ModelSizeKb(), eval_seq(*m));
  }
  {
    md::CnnMConfig cfg;
    cfg.epochs = scale.epochs_small;
    auto m = md::CnnM::Train(prep.seq.train.x, prep.seq.train.labels,
                             prep.seq.train.size(), prep.seq.train.dim, nc,
                             cfg);
    const auto lowered = pegasus::compiler::PlaceOnSwitch(m->Compiled());
    std::printf("%-28s %8zu %8zu %10.1f %10.4f  (Figure 5 #3)\n",
                "CNN-M, advanced fusion", m->Compiled().NumTables(),
                lowered.StagesUsed(), m->ModelSizeKb(), eval_seq(*m));
  }
  return 0;
}
