// Example: the control-plane model lifecycle — retrain and push without a
// maintenance window.
//
// The paper's deployment story is a switch that keeps classifying live
// traffic while operators retrain offline and push updated models. This
// walkthrough runs that loop end-to-end on the simulator:
//
//   1. train v1 quickly, CompileVersioned it and Publish to the
//      ModelRegistry;
//   2. start serving a merged live trace through the StreamServer;
//   3. retrain (v2, more epochs), publish, and let the UpdatePlanner stage
//      the push (which tables are unchanged / entry-delta / reseal, bytes
//      to move);
//   4. SwapModel(v2) mid-stream — hitless: per-flow windows survive, every
//      packet keeps getting a decision, and each decision records the
//      version that produced it;
//   5. co-place an anomaly detector next to the classifier under one
//      switch budget, then show the structured rejection when the budget
//      is too small;
//   6. round-trip v2 through the registry's on-disk envelope.
#include <cstdio>
#include <sstream>

#include "compiler/compiler.hpp"
#include "control/planner.hpp"
#include "control/registry.hpp"
#include "eval/experiment.hpp"
#include "models/autoencoder.hpp"
#include "models/cnn_m.hpp"
#include "runtime/stream_server.hpp"

int main() {
  using namespace pegasus;

  auto prep = eval::Prepare(traffic::IscxVpnSpec(50), /*with_raw_bytes=*/false);
  std::printf("dataset: %s, %zu flows, %zu classes\n", prep.name.c_str(),
              prep.dataset.flows.size(), prep.num_classes);

  runtime::LoweringOptions lopts;
  lopts.stateful_bits_per_flow =
      runtime::OnlineFlowStateSpec(runtime::FeatureKind::kSeq).BitsPerFlow();

  control::ModelRegistry registry;

  // ---- v1: quick first model, published and serving ----------------------
  models::CnnMConfig cfg1;
  cfg1.epochs = 4;
  auto m1 = models::CnnM::Train(prep.seq.train.x, prep.seq.train.labels,
                                prep.seq.train.size(), prep.seq.train.dim,
                                prep.num_classes, cfg1);
  registry.Publish("traffic-classifier",
                   compiler::CompileVersioned(m1->Compiled(), lopts));
  auto v1 = registry.Latest("traffic-classifier");
  std::printf("published %s v%llu: %zu tables, %zu stages, %.2f%% TCAM\n",
              v1->name.c_str(),
              static_cast<unsigned long long>(v1->version),
              v1->lowered->NumTables(), v1->report.stages_used,
              v1->report.TcamPct(lopts.switch_model));

  // ---- v2: retrain while v1 serves ---------------------------------------
  models::CnnMConfig cfg2;
  cfg2.epochs = 25;
  auto m2 = models::CnnM::Train(prep.seq.train.x, prep.seq.train.labels,
                                prep.seq.train.size(), prep.seq.train.dim,
                                prep.num_classes, cfg2);
  registry.Publish("traffic-classifier",
                   compiler::CompileVersioned(m2->Compiled(), lopts));
  auto v2 = registry.Latest("traffic-classifier");

  const auto plan = control::PlanUpdate(*v1, *v2);
  std::printf("\n%s", control::FormatPlan(plan).c_str());

  // ---- hitless swap mid-stream -------------------------------------------
  // Telemetry sampling is on, so each sampled decision carries its
  // end-to-end serving latency and the per-version report below can
  // correlate accuracy with latency across the swap boundary.
  const auto trace = eval::TestTrace(prep);
  runtime::StreamServerOptions sopts;
  sopts.num_shards = 2;
  sopts.flows_per_shard = 1 << 10;
  sopts.feature = runtime::FeatureKind::kSeq;
  sopts.telemetry.sample_every = 8;
  runtime::StreamServer server(v1->lowered, sopts, v1->version);
  const auto run = eval::ServeTraceWithSwap(server, trace, trace.size() / 2,
                                            v2->lowered, v2->version);

  std::printf("\nserved %llu packets, swapped v%llu -> v%llu mid-stream\n",
              static_cast<unsigned long long>(run.stats.packets),
              static_cast<unsigned long long>(v1->version),
              static_cast<unsigned long long>(v2->version));
  std::printf("  swap applied on %llu shards in %.3f ms total "
              "(per-shard serving gap)\n",
              static_cast<unsigned long long>(run.stats.swaps),
              run.stats.swap_wall_ms);
  const auto detail =
      eval::EvaluateDecisionsDetailed(run.decisions, prep.num_classes);
  for (const auto& vw : detail.versions) {
    std::printf("  v%llu: %zu decisions, accuracy %.3f, e2e latency "
                "p50 %.1f us / p99 %.1f us (%zu sampled)\n",
                static_cast<unsigned long long>(vw.version), vw.decisions,
                vw.accuracy, vw.latency_p50_ns / 1e3,
                vw.latency_p99_ns / 1e3, vw.sampled);
  }
  std::printf("  per-flow state survived the swap: %llu warm-ups total\n",
              static_cast<unsigned long long>(run.stats.warmup));

  // ---- co-placement: classifier + anomaly detector -----------------------
  models::AutoencoderConfig ae_cfg;
  ae_cfg.epochs = 20;
  auto ae = models::Autoencoder::Train(prep.seq.train.x,
                                       prep.seq.train.size(),
                                       prep.seq.train.dim, ae_cfg);
  registry.Publish("anomaly-detector",
                   compiler::CompileVersioned(ae->Compiled(), lopts));
  auto ad = registry.Latest("anomaly-detector");

  const auto joint = control::PlanCoPlacement({v2.get(), ad.get()}, {});
  std::printf("\nco-placement on one switch budget:\n");
  for (const auto& share : joint.models) {
    std::printf("  %-18s v%llu stages [%zu, %zu), %zu PHV bits\n",
                share.name.c_str(),
                static_cast<unsigned long long>(share.version),
                share.stage_offset, share.stage_offset + share.stages_used,
                share.phv_bits);
  }
  std::printf("  total: %zu stages, %zu PHV bits, %zu b/flow state\n",
              joint.stages_used, joint.phv_bits,
              joint.stateful_bits_per_flow);

  dataplane::SwitchModel tight;
  tight.num_stages = v2->report.stages_used;  // no room for the detector
  try {
    control::PlanCoPlacement({v2.get(), ad.get()}, tight);
  } catch (const control::AdmissionError& e) {
    std::printf("  tight budget rejected: %s (resource %s, %zu needed, "
                "%zu available)\n",
                e.what(), control::AdmissionResourceName(e.resource()),
                e.required(), e.available());
  }

  // ---- on-disk round trip -------------------------------------------------
  std::stringstream disk;
  registry.SaveModel(disk, "traffic-classifier", v2->version);
  control::ModelRegistry restored;
  const auto back = restored.LoadModel(disk);
  std::printf("\nenvelope round trip: %s v%llu, %zu tables, %s\n",
              back->name.c_str(),
              static_cast<unsigned long long>(back->version),
              back->lowered->NumTables(),
              back->report.sram_bits == v2->report.sram_bits
                  ? "resource bill identical"
                  : "RESOURCE MISMATCH");
  return 0;
}
