// Quickstart: the whole Pegasus lifecycle on a toy function, in ~80 lines.
//
//   1. express a computation as Partition -> Map -> SumReduce primitives
//      (here: a 4->2 fully connected layer with a ReLU, via the operator
//      helpers — the same path the real models use);
//   2. run the unified compiler driver (compiler::CompileToSwitch): the
//      PassManager executes fuse-basic → augment → quantize-plan →
//      tablegen → lower as named passes and records per-pass diagnostics;
//   3. run per-packet and batched inference on the PISA switch simulator;
//   4. confirm the simulator matches the host-side reference bit-for-bit
//      and inspect the resource bill.
#include <cstdio>
#include <iostream>
#include <random>
#include <vector>

#include "compiler/compiler.hpp"
#include "core/operators.hpp"
#include "runtime/inference_engine.hpp"

int main() {
  using namespace pegasus;

  // ---- 1. build the primitive program ---------------------------------
  core::ProgramBuilder b(/*input_dim=*/4);
  const std::vector<float> w{0.05f, -0.02f, 0.01f, 0.04f,
                             -0.03f, 0.02f, 0.02f, 0.01f};  // 4x2
  const std::vector<float> bias{0.5f, -0.25f};
  core::ValueId v = core::AppendFullyConnected(
      b, b.input(), w, 4, 2, bias, /*segment_dim=*/2, /*fuzzy_leaves=*/64);
  v = b.Map(v, core::MakeReLU(2), 64);
  core::Program program = b.Finish(v);
  std::printf("built program: %zu Maps, %zu SumReduces\n",
              program.NumMaps(), program.NumSumReduces());

  // ---- 2. run the unified compiler driver --------------------------------
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<float> dist(0.0f, 255.0f);
  const std::size_t n = 4000;
  std::vector<float> train(n * 4);
  for (float& x : train) x = std::floor(dist(rng));
  compiler::CompileSwitchResult result =
      compiler::CompileToSwitch(std::move(program), train, n);
  std::printf("after Basic Primitive Fusion: %zu -> %zu Maps\n",
              result.fusion.maps_before, result.fusion.maps_after);
  std::printf("compiled: %zu fuzzy tables, %zu total leaves\n",
              result.model.NumTables(), result.model.TotalLeaves());
  std::printf("pass diagnostics:\n");
  compiler::PrintDiagnostics(std::cout, result.history);

  const core::CompiledModel& compiled = result.model;
  runtime::LoweredModel& switch_model = result.lowered;
  const auto report = switch_model.Report();
  std::printf("placed on switch: %zu tables in %zu stages, "
              "%.3f%% SRAM, %.3f%% TCAM\n",
              switch_model.NumTables(), switch_model.StagesUsed(),
              report.SramPct({}), report.TcamPct({}));

  // ---- 3./4. per-packet inference + bit-exactness ------------------------
  std::size_t mismatches = 0;
  double max_err = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const std::vector<float> x{std::floor(dist(rng)), std::floor(dist(rng)),
                               std::floor(dist(rng)), std::floor(dist(rng))};
    if (switch_model.InferRaw(x) != compiled.EvaluateRaw(x)) ++mismatches;
    // fuzzy vs exact float reference
    const auto fuzzy = compiled.Evaluate(x);
    float exact0 = bias[0], exact1 = bias[1];
    for (int d = 0; d < 4; ++d) {
      exact0 += x[static_cast<std::size_t>(d)] * w[static_cast<std::size_t>(d) * 2];
      exact1 += x[static_cast<std::size_t>(d)] * w[static_cast<std::size_t>(d) * 2 + 1];
    }
    exact0 = std::max(0.0f, exact0);
    exact1 = std::max(0.0f, exact1);
    max_err = std::max({max_err, std::abs(double{fuzzy[0]} - exact0),
                        std::abs(double{fuzzy[1]} - exact1)});
  }
  std::printf("simulator vs host reference: %zu mismatches in 1000 packets\n",
              mismatches);
  std::printf("fuzzy vs exact float: max abs error %.4f (fuzzy cells are "
              "~2-4 units wide here)\n", max_err);

  // Batched inference: a preallocated PHV pool, whole batches through the
  // pipeline — same bits as the per-packet path, no per-packet allocation.
  const std::size_t batch = 64;
  runtime::InferenceEngine engine(switch_model, batch);
  std::vector<float> batch_x(batch * 4);
  for (float& x : batch_x) x = std::floor(dist(rng));
  std::vector<std::int64_t> batch_raw(batch * engine.output_dim());
  engine.InferRaw(batch_x, batch, batch_raw);
  std::size_t batch_mismatches = 0;
  for (std::size_t i = 0; i < batch; ++i) {
    const auto single = switch_model.InferRaw(
        std::span<const float>(batch_x.data() + i * 4, 4));
    for (std::size_t d = 0; d < single.size(); ++d) {
      if (single[d] != batch_raw[i * engine.output_dim() + d]) {
        ++batch_mismatches;
      }
    }
  }
  std::printf("batched engine vs per-packet path: %zu mismatches in %zu "
              "packets\n", batch_mismatches, batch);
  return mismatches == 0 && batch_mismatches == 0 ? 0 : 1;
}
