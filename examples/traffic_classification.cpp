// Example: line-rate encrypted-traffic classification (the paper's §1
// motivating workload).
//
// Trains CNN-M on a synthetic ISCXVPN-like workload, compiles it with
// Advanced Primitive Fusion (one fuzzy Map per packet-pair window), lowers
// it onto the simulated switch, and then serves a live merged packet stream
// through the sharded streaming runtime: the test flows are interleaved
// into one time-ordered trace, each packet updates its flow's preallocated
// state in the shard's FlowTable, and full windows are classified in
// batches through the shard's InferenceEngine.
#include <cstdio>

#include "compiler/compiler.hpp"
#include "eval/experiment.hpp"
#include "models/cnn_m.hpp"
#include "runtime/stream_server.hpp"

int main() {
  using namespace pegasus;

  // ---- train + compile ---------------------------------------------------
  auto prep = eval::Prepare(traffic::IscxVpnSpec(60), /*with_raw_bytes=*/false);
  std::printf("dataset: %s, %zu flows, %zu classes\n", prep.name.c_str(),
              prep.dataset.flows.size(), prep.num_classes);
  models::CnnMConfig cfg;
  cfg.epochs = 20;
  auto model = models::CnnM::Train(prep.seq.train.x, prep.seq.train.labels,
                                   prep.seq.train.size(), prep.seq.train.dim,
                                   prep.num_classes, cfg);
  std::printf("CNN-M: %.0f Kb of weights fused into %zu tables\n",
              model->ModelSizeKb(), model->Compiled().NumTables());

  runtime::LoweringOptions lopts;
  // Account the per-flow state the serving runtime actually keeps (running
  // min/max + stored fuzzy rings + prev timestamp), so the switch report
  // and the flow-table stats below quote the same bits/flow.
  lopts.stateful_bits_per_flow =
      runtime::OnlineFlowStateSpec(runtime::FeatureKind::kSeq).BitsPerFlow();
  auto switch_model = compiler::PlaceOnSwitch(model->Compiled(), lopts);
  const auto rep = switch_model.Report();
  std::printf("switch: %zu stages, %.2f%% SRAM, %.2f%% TCAM, %zu b/flow\n",
              switch_model.StagesUsed(), rep.SramPct({}), rep.TcamPct({}),
              rep.stateful_bits_per_flow);

  // ---- streaming serving -------------------------------------------------
  // Interleave the test flows into one time-ordered trace and serve it:
  // per-flow windows live in the shards' preallocated FlowTables, full
  // windows flush through each shard's batched InferenceEngine.
  const auto trace = eval::TestTrace(prep);
  runtime::StreamServerOptions sopts;
  sopts.num_shards = 2;
  sopts.flows_per_shard = 1 << 10;
  sopts.feature = runtime::FeatureKind::kSeq;
  runtime::StreamServer server(switch_model, sopts);
  const auto run = eval::ServeTrace(server, trace);

  const auto report = eval::EvaluateDecisions(run.decisions, prep.num_classes);
  std::printf("streamed %llu packets over %zu shards "
              "(%llu warm-up, %llu classified in %llu batches)\n",
              static_cast<unsigned long long>(run.stats.packets),
              server.num_shards(),
              static_cast<unsigned long long>(run.stats.warmup),
              static_cast<unsigned long long>(run.stats.decisions),
              static_cast<unsigned long long>(run.stats.batches));
  std::printf("flow tables: %zu flows resident, %llu evictions, "
              "%zu b/flow state, %.1f Kb SRAM\n",
              run.stats.flows_resident,
              static_cast<unsigned long long>(run.stats.table.evictions),
              run.stats.stateful_bits_per_flow,
              static_cast<double>(run.stats.flow_table_sram_bits) / 1024.0);
  std::printf("packet-level accuracy %.3f (macro-F1 %.3f) at %.0f Kpps\n",
              report.accuracy, report.f1, run.packets_per_sec / 1000.0);
  return 0;
}
