// Example: line-rate encrypted-traffic classification (the paper's §1
// motivating workload).
//
// Trains CNN-M on a synthetic ISCXVPN-like workload, compiles it with
// Advanced Primitive Fusion (one fuzzy Map per packet-pair window), lowers
// it onto the simulated switch, and then classifies a live packet stream
// the way the dataplane would: per-flow windows maintained in register
// state, one pipeline pass per packet once the window fills.
#include <cstdio>

#include "compiler/compiler.hpp"
#include "eval/experiment.hpp"
#include "models/cnn_m.hpp"
#include "runtime/flow_state.hpp"
#include "runtime/lowering.hpp"
#include "traffic/features.hpp"

int main() {
  using namespace pegasus;

  // ---- train + compile ---------------------------------------------------
  auto prep = eval::Prepare(traffic::IscxVpnSpec(60), /*with_raw_bytes=*/false);
  std::printf("dataset: %s, %zu flows, %zu classes\n", prep.name.c_str(),
              prep.dataset.flows.size(), prep.num_classes);
  models::CnnMConfig cfg;
  cfg.epochs = 20;
  auto model = models::CnnM::Train(prep.seq.train.x, prep.seq.train.labels,
                                   prep.seq.train.size(), prep.seq.train.dim,
                                   prep.num_classes, cfg);
  std::printf("CNN-M: %.0f Kb of weights fused into %zu tables\n",
              model->ModelSizeKb(), model->Compiled().NumTables());

  runtime::LoweringOptions lopts;
  lopts.stateful_bits_per_flow = model->FlowState().BitsPerFlow();
  auto switch_model = compiler::PlaceOnSwitch(model->Compiled(), lopts);
  const auto rep = switch_model.Report();
  std::printf("switch: %zu stages, %.2f%% SRAM, %.2f%% TCAM, %zu b/flow\n",
              switch_model.StagesUsed(), rep.SramPct({}), rep.TcamPct({}),
              rep.stateful_bits_per_flow);

  // ---- per-packet streaming inference ------------------------------------
  // Per-flow window of the last 8 packets' (len, ipd), as the switch would
  // keep it in register state.
  runtime::FlowStateSpec spec;
  spec.Add("len", 8, traffic::kWindow).Add("ipd", 8, traffic::kWindow);
  runtime::FlowStateTable flow_state(spec, 1 << 16);

  std::size_t packets = 0, classified = 0, correct = 0;
  for (std::size_t fi = 0; fi < prep.dataset.flows.size(); ++fi) {
    if (prep.flow_split[fi] != 2) continue;  // test flows only
    const traffic::Flow& flow = prep.dataset.flows[fi];
    for (std::size_t p = 0; p < flow.packets.size(); ++p) {
      ++packets;
      const std::uint64_t ipd =
          p == 0 ? 0 : flow.packets[p].ts_us - flow.packets[p - 1].ts_us;
      flow_state.PushWindow(flow.key, 0, traffic::QuantizeLen(flow.packets[p].len));
      flow_state.PushWindow(flow.key, 1, traffic::QuantizeIpd(ipd));
      if (p + 1 < traffic::kWindow) continue;  // window not full yet
      // Assemble the window from register state (oldest first).
      std::vector<float> features;
      for (std::size_t w = traffic::kWindow; w-- > 0;) {
        features.push_back(static_cast<float>(flow_state.Read(flow.key, 0, w)));
        features.push_back(static_cast<float>(flow_state.Read(flow.key, 1, w)));
      }
      const auto logits = switch_model.Infer(features);
      std::size_t best = 0;
      for (std::size_t c = 1; c < logits.size(); ++c) {
        if (logits[c] > logits[best]) best = c;
      }
      ++classified;
      if (static_cast<std::int32_t>(best) == flow.label) ++correct;
      if (p + 1 >= traffic::kWindow + 4) break;  // a few windows per flow
    }
  }
  std::printf("streamed %zu packets, classified %zu windows, "
              "packet-level accuracy %.3f\n",
              packets, classified,
              static_cast<double>(correct) / static_cast<double>(classified));
  return 0;
}
