// Example: the full packet-I/O loop — capture in, decisions out.
//
// 1. Generate a synthetic ISCXVPN-like dataset and *export it as a real
//    pcap capture* (Ethernet/IPv4/TCP|UDP frames, merged trace timing) —
//    the self-hosting stand-in for the paper's non-redistributable traces.
// 2. Re-import the capture through PcapReader -> WireParser ->
//    FlowAssembler into a standard traffic::Dataset and train CNN-M on it,
//    exactly as if the pcap had come from a telescope tap.
// 3. Replay the capture *with trace timing* (speedup xN) straight into the
//    sharded StreamServer via PcapPacketSource + TraceReplayer — no
//    Dataset materialization on the serving path — and report accuracy
//    against the port-encoded ground truth plus replay pacing stats,
//    with a telemetry::StatsReporter printing live serving stats while
//    the paced replay runs.
#include <cstdio>
#include <iostream>

#include "compiler/compiler.hpp"
#include "eval/experiment.hpp"
#include "io/assemble.hpp"
#include "io/replay.hpp"
#include "models/cnn_m.hpp"
#include "runtime/stream_server.hpp"
#include "telemetry/exposition.hpp"

int main() {
  using namespace pegasus;
  const char* path = "pcap_replay_example.pcap";

  // ---- 1. synthesize + export a capture ----------------------------------
  const auto ds = traffic::Generate(traffic::IscxVpnSpec(30));
  io::PcapExportOptions eopts;
  eopts.merged = true;  // realistic cross-flow interleaving
  const auto records = io::WriteDatasetPcap(path, ds, eopts);
  std::printf("exported %s: %zu flows -> %llu records\n", path,
              ds.flows.size(), static_cast<unsigned long long>(records));

  // ---- 2. import it back + train on the imported view --------------------
  const auto iopts = io::ImportOptionsFor(ds);
  const auto imported = io::ReadDatasetPcap(path, iopts);
  std::printf("imported: %llu frames, %llu parsed, %llu flows\n",
              static_cast<unsigned long long>(imported.parse.frames),
              static_cast<unsigned long long>(imported.parse.parsed),
              static_cast<unsigned long long>(imported.assemble.flows));

  const auto seq = traffic::ExtractSeqFeatures(imported.dataset.flows);
  models::CnnMConfig cfg;
  cfg.epochs = 15;
  auto model =
      models::CnnM::Train(seq.x, seq.labels, seq.size(), seq.dim,
                          imported.dataset.NumClasses(), cfg);
  runtime::LoweringOptions lopts;
  lopts.stateful_bits_per_flow =
      runtime::OnlineFlowStateSpec(runtime::FeatureKind::kSeq).BitsPerFlow();
  auto lowered = compiler::PlaceOnSwitch(model->Compiled(), lopts);

  // ---- 3. timed replay straight from the capture -------------------------
  io::PcapPacketSource source(path, iopts.labeler);
  io::ReplayOptions ropts;
  ropts.clock = io::ReplayClock::kSpeedup;
  ropts.speedup = 512.0;
  io::TraceReplayer replayer(source, ropts);

  runtime::StreamServerOptions sopts;
  sopts.num_shards = 2;
  sopts.flows_per_shard = 1 << 10;
  sopts.feature = runtime::FeatureKind::kSeq;
  sopts.telemetry.sample_every = 16;  // stage latency on the replay path
  runtime::StreamServer server(lowered, sopts);

  // Live stats while the paced replay runs: one line per interval with
  // pps, ring depth/HWM, hit rate and the sampled e2e latency quantiles.
  telemetry::StatsReporter reporter(
      [&server] { return server.TelemetrySnapshot(); }, std::cout,
      /*interval_ms=*/250);
  reporter.Start();
  const auto run = eval::ServeTrace(server, replayer);
  reporter.Stop();  // emits a final summary line

  const auto rs = replayer.stats();
  const auto report =
      eval::EvaluateDecisions(run.decisions, imported.dataset.NumClasses());
  std::printf("replayed %llu packets (%s x%.0f): trace span %.2f s in "
              "%.2f s wall, max lag %llu us\n",
              static_cast<unsigned long long>(rs.packets),
              io::ReplayClockName(ropts.clock), ropts.speedup,
              static_cast<double>(rs.TraceSpanUs()) / 1e6,
              rs.wall_ms / 1e3,
              static_cast<unsigned long long>(rs.max_lag_us));
  std::printf("decisions: %llu (accuracy %.3f, macro-F1 %.3f), "
              "%zu flows resident\n",
              static_cast<unsigned long long>(run.stats.decisions),
              report.accuracy, report.f1, run.stats.flows_resident);
  std::remove(path);
  return 0;
}
