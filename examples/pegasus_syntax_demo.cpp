// Example: the Pegasus Syntax front-end (paper §6.2, Figure 6).
//
// Defines a small model in the textual syntax, binds its Map functions to
// trained weights through the FunctionRegistry, compiles the parsed
// program, and emits the P4 the translator would hand to the switch
// toolchain — the full front-to-back path of the paper's workflow.
#include <cstdio>
#include <random>

#include "compiler/compiler.hpp"
#include "core/operators.hpp"
#include "core/syntax.hpp"
#include "runtime/p4gen.hpp"

int main() {
  using namespace pegasus;

  // The model definition a user would write (Figure 6's shape):
  const std::string source = R"(
    # Per-packet feature vector: 8 quantized fields.
    input features[8];

    # Partition into 2-dim units, run per-segment linear maps, aggregate.
    hidden = SumReduce(Map(Partition(features, dim=2, stride=2),
                           fn=fc1, leaves=64));
    # Nonlinear readout keyed on the accumulator.
    output Map(hidden, fn=readout, leaves=64);
  )";

  // Bind the function names to (here: random, in practice trained) weights.
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<float> wdist(-0.05f, 0.05f);
  auto rand_vec = [&](std::size_t n) {
    std::vector<float> v(n);
    for (float& w : v) w = wdist(rng);
    return v;
  };
  core::FunctionRegistry registry;
  std::vector<core::MapFunction> fc1_family;
  for (int seg = 0; seg < 4; ++seg) {
    fc1_family.push_back(core::MakeLinear(
        rand_vec(2 * 4), 2, 4, seg == 0 ? rand_vec(4) : std::vector<float>{},
        "fc1_seg" + std::to_string(seg)));
  }
  registry.RegisterFamily("fc1", std::move(fc1_family));
  registry.Register(
      "readout",
      core::Compose(core::MakeReLU(4),
                    core::MakeLinear(rand_vec(4 * 3), 4, 3, rand_vec(3),
                                     "out")));

  core::Program program = core::ParsePegasusSyntax(source, registry);
  std::printf("parsed: %zu Maps, %zu SumReduces\n", program.NumMaps(),
              program.NumSumReduces());

  // Compile against a synthetic feature distribution and emit P4.
  std::uniform_real_distribution<float> fdist(0.0f, 255.0f);
  const std::size_t n = 2000;
  std::vector<float> x(n * 8);
  for (float& v : x) v = std::floor(fdist(rng));
  const core::CompiledModel compiled =
      compiler::CompileToModel(std::move(program), x, n).model;

  const std::string p4 = runtime::EmitP4(compiled);
  std::printf("---- generated P4 (%zu bytes) ----\n%s", p4.size(),
              p4.c_str());
  return 0;
}
