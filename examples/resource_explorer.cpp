// Example: exploring the accuracy/resource trade-off space (the dial the
// paper says users should turn: "allowing users to balance accuracy and
// resource overhead based on their specific requirements", §8).
//
// Sweeps MLP-B's fuzzy budget and activation width, lowers each
// configuration onto the simulated switch, and prints a frontier table —
// including configurations that fail placement, which is what a too-big
// model looks like on real hardware.
#include <cstdio>

#include "compiler/compiler.hpp"
#include "eval/experiment.hpp"
#include "models/mlp_b.hpp"
#include "runtime/lowering.hpp"

int main() {
  using namespace pegasus;

  auto prep = eval::Prepare(traffic::CiciotSpec(60), /*with_raw_bytes=*/false);
  std::printf("exploring MLP-B configurations on %s\n", prep.name.c_str());
  std::printf("%8s %6s %10s %8s %8s %8s %8s\n", "leaves", "bits", "F1",
              "tables", "stages", "SRAM%", "TCAM%");

  for (std::size_t leaves : {16u, 64u, 256u}) {
    for (int bits : {8, 16}) {
      models::MlpBConfig cfg;
      cfg.epochs = 15;
      cfg.fuzzy_leaves = leaves;
      cfg.compile.value_bits = bits;
      auto model = models::MlpB::Train(
          prep.stat.train.x, prep.stat.train.labels, prep.stat.train.size(),
          prep.stat.train.dim, prep.num_classes, cfg);
      const auto& test = prep.stat.test;
      std::size_t correct = 0;
      std::vector<std::int32_t> pred(test.size());
      for (std::size_t i = 0; i < test.size(); ++i) {
        pred[i] = model->PredictClassFuzzy(std::span<const float>(
            test.x.data() + i * test.dim, test.dim));
        if (pred[i] == test.labels[i]) ++correct;
      }
      const double f1 =
          eval::Evaluate(test.labels, pred, prep.num_classes).f1;
      try {
        auto lowered = compiler::PlaceOnSwitch(model->Compiled());
        const auto rep = lowered.Report();
        std::printf("%8zu %6d %10.4f %8zu %8zu %7.2f%% %7.2f%%\n", leaves,
                    bits, f1, lowered.NumTables(), lowered.StagesUsed(),
                    rep.SramPct({}), rep.TcamPct({}));
      } catch (const dataplane::PlacementError& e) {
        std::printf("%8zu %6d %10.4f %8s %8s %8s %8s  <- does not fit: %s\n",
                    leaves, bits, f1, "-", "-", "-", "-", e.what());
      }
    }
  }
  return 0;
}
