// Example: unsupervised zero-day detection on the dataplane (paper §7.4).
//
// Trains the Pegasus AutoEncoder on benign traffic only, picks an alarm
// threshold from the benign validation scores (99th percentile), lowers the
// model onto the simulated switch, and then serves a live mixed stream —
// benign test flows interleaved with injected attack flows — through the
// streaming runtime. Every packet's window is scored in-dataplane; the
// decision score IS the MAE reconstruction error, so thresholding it is the
// IPS deployment story the paper sketches ("enforce traffic rate limits or
// send real-time alerts").
#include <algorithm>
#include <cstdio>
#include <vector>

#include "compiler/compiler.hpp"
#include "eval/experiment.hpp"
#include "models/autoencoder.hpp"
#include "runtime/stream_server.hpp"

int main() {
  using namespace pegasus;

  auto prep = eval::Prepare(traffic::PeerRushSpec(80), /*with_raw_bytes=*/false);
  models::AutoencoderConfig cfg;
  cfg.epochs = 40;
  auto model = models::Autoencoder::Train(
      prep.seq.train.x, prep.seq.train.size(), prep.seq.train.dim, cfg);
  std::printf("AutoEncoder trained on %zu benign windows (%s)\n",
              prep.seq.train.size(), prep.name.c_str());

  // Threshold = 99th percentile of benign *validation* scores. ScoreFuzzy
  // (CompiledModel::Evaluate) is bit-identical to the lowered pipeline the
  // server runs, so the threshold transfers exactly to the stream.
  std::vector<float> val_scores;
  const auto& val = prep.seq.val;
  for (std::size_t i = 0; i < val.size(); ++i) {
    val_scores.push_back(model->ScoreFuzzy(
        std::span<const float>(val.x.data() + i * val.dim, val.dim)));
  }
  std::sort(val_scores.begin(), val_scores.end());
  const float threshold = val_scores[val_scores.size() * 99 / 100];
  std::printf("alarm threshold (99th pct of benign val MAE): %.4f\n",
              threshold);

  // ---- serve a mixed benign + attack stream ------------------------------
  auto lowered = compiler::PlaceOnSwitch(model->Compiled());

  const auto profiles = traffic::AttackProfiles();
  // Attack flows carry label -(family index + 1); benign labels stay >= 0.
  std::vector<std::vector<traffic::Flow>> attack_flows;
  for (std::size_t a = 0; a < profiles.size(); ++a) {
    attack_flows.push_back(traffic::GenerateFlows(
        profiles[a], 40, -static_cast<std::int32_t>(a) - 1, 24, 64,
        1234 + a));
  }
  std::vector<const traffic::Flow*> mixed;
  for (std::size_t fi = 0; fi < prep.dataset.flows.size(); ++fi) {
    if (prep.flow_split[fi] == 2) mixed.push_back(&prep.dataset.flows[fi]);
  }
  for (const auto& family : attack_flows) {
    for (const auto& flow : family) mixed.push_back(&flow);
  }
  const auto trace = traffic::MergeTrace(mixed, {});

  runtime::StreamServerOptions sopts;
  sopts.num_shards = 2;
  sopts.flows_per_shard = 1 << 10;
  sopts.feature = runtime::FeatureKind::kSeq;
  runtime::StreamServer server(lowered, sopts);
  const auto run = eval::ServeTrace(server, trace);

  // Per-packet alarm rates from the streamed scores (decision.score is the
  // in-dataplane MAE for 1-output models).
  std::size_t benign_windows = 0, benign_alarms = 0;
  std::vector<std::size_t> atk_windows(profiles.size(), 0);
  std::vector<std::size_t> atk_alarms(profiles.size(), 0);
  for (const auto& d : run.decisions) {
    const bool alarm = d.score > threshold;
    if (d.label >= 0) {
      ++benign_windows;
      benign_alarms += alarm ? 1 : 0;
    } else {
      const auto a = static_cast<std::size_t>(-d.label - 1);
      ++atk_windows[a];
      atk_alarms[a] += alarm ? 1 : 0;
    }
  }
  std::printf("streamed %llu packets (%llu scored) at %.0f Kpps, "
              "%llu evictions\n",
              static_cast<unsigned long long>(run.stats.packets),
              static_cast<unsigned long long>(run.stats.decisions),
              run.packets_per_sec / 1000.0,
              static_cast<unsigned long long>(run.stats.table.evictions));
  std::printf("benign test FPR: %.3f\n",
              static_cast<double>(benign_alarms) /
                  static_cast<double>(
                      std::max<std::size_t>(benign_windows, 1)));
  std::printf("%-8s %10s %12s\n", "Attack", "windows", "detected");
  for (std::size_t a = 0; a < profiles.size(); ++a) {
    std::printf("%-8s %10zu %11.1f%%\n", profiles[a].name.c_str(),
                atk_windows[a],
                100.0 * static_cast<double>(atk_alarms[a]) /
                    static_cast<double>(std::max<std::size_t>(
                        atk_windows[a], 1)));
  }
  return 0;
}
