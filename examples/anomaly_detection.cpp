// Example: unsupervised zero-day detection on the dataplane (paper §7.4).
//
// Trains the Pegasus AutoEncoder on benign traffic only, picks an alarm
// threshold from the benign validation scores (99th percentile), then
// replays a test stream with injected attacks and reports per-attack
// detection and false-positive rates — the IPS deployment story the paper
// sketches ("enforce traffic rate limits or send real-time alerts").
#include <algorithm>
#include <cstdio>

#include "eval/experiment.hpp"
#include "models/autoencoder.hpp"

int main() {
  using namespace pegasus;

  auto prep = eval::Prepare(traffic::PeerRushSpec(80), /*with_raw_bytes=*/false);
  models::AutoencoderConfig cfg;
  cfg.epochs = 40;
  auto model = models::Autoencoder::Train(
      prep.seq.train.x, prep.seq.train.size(), prep.seq.train.dim, cfg);
  std::printf("AutoEncoder trained on %zu benign windows (%s)\n",
              prep.seq.train.size(), prep.name.c_str());

  // Threshold = 99th percentile of benign *validation* scores.
  std::vector<float> val_scores;
  const auto& val = prep.seq.val;
  for (std::size_t i = 0; i < val.size(); ++i) {
    val_scores.push_back(model->ScoreFuzzy(
        std::span<const float>(val.x.data() + i * val.dim, val.dim)));
  }
  std::sort(val_scores.begin(), val_scores.end());
  const float threshold =
      val_scores[val_scores.size() * 99 / 100];
  std::printf("alarm threshold (99th pct of benign val MAE): %.4f\n",
              threshold);

  // Benign test false-positive rate.
  const auto& test = prep.seq.test;
  std::size_t fp = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (model->ScoreFuzzy(std::span<const float>(
            test.x.data() + i * test.dim, test.dim)) > threshold) {
      ++fp;
    }
  }
  std::printf("benign test FPR: %.3f\n",
              static_cast<double>(fp) / static_cast<double>(test.size()));

  // Per-attack detection rates.
  std::printf("%-8s %10s %12s\n", "Attack", "windows", "detected");
  for (const auto& prof : traffic::AttackProfiles()) {
    auto flows = traffic::GenerateFlows(prof, 40, -1, 24, 64, 1234);
    const auto atk = traffic::ExtractSeqFeatures(flows);
    std::size_t detected = 0;
    for (std::size_t i = 0; i < atk.size(); ++i) {
      if (model->ScoreFuzzy(std::span<const float>(
              atk.x.data() + i * atk.dim, atk.dim)) > threshold) {
        ++detected;
      }
    }
    std::printf("%-8s %10zu %11.1f%%\n", prof.name.c_str(), atk.size(),
                100.0 * static_cast<double>(detected) /
                    static_cast<double>(atk.size()));
  }
  return 0;
}
